"""Dirty-region computation for incremental recertification.

Given the parent program's graph and the edited program's graph (any of
the engine-level graphs: boolean programs, TVP action graphs, inlined
CFGs), :func:`match_graphs` aligns the two by forward propagation from
the entries and returns the *clean* region of the new graph — the nodes
whose fixpoint values provably coincide with the parent's.

A new node is clean when (a) it is matched, (b) its in-edges are in
label-preserving bijection with its image's in-edges (with matched
sources on both sides), and (c) all its predecessors are clean.  Clean
is therefore predecessor-closed **on both graphs simultaneously**: the
fixpoint equations restricted to the clean region form isomorphic closed
subsystems (same labels ⇒ same transfer functions, same initial-state
contribution at the entry), so the two least fixpoints agree on it —
*regardless* of whether the matching is the "intended" alignment, which
is what makes the dst-id-order tie-break below safe.  Everything else is
dirty and gets re-iterated.

Edge labels are supplied by the caller and must capture exactly the
transfer semantics of the edge (and nothing more — line numbers, say,
are excluded wherever they cannot leak into abstract states, so that a
pure line-shifting edit keeps the region clean).
"""

from __future__ import annotations

from collections import Counter, defaultdict, deque
from typing import Dict, Hashable, Iterable, List, Set, Tuple

#: (src, dst, label) — the caller renders engine edges into this shape.
LabeledEdge = Tuple[int, int, Hashable]


def match_graphs(
    old_entry: int,
    old_edges: Iterable[LabeledEdge],
    new_entry: int,
    new_edges: Iterable[LabeledEdge],
) -> Tuple[Dict[int, int], Set[int]]:
    """Align two labeled graphs; returns ``(new->old mapping, clean)``.

    ``clean`` is a predecessor-closed set of *new* node ids on which the
    parent's fixpoint annotation can be reused verbatim (via the
    mapping).  The empty set is always a sound answer; the matching only
    ever shrinks work, never changes results.
    """
    old_out: Dict[int, List[Tuple[Hashable, int]]] = defaultdict(list)
    new_out: Dict[int, List[Tuple[Hashable, int]]] = defaultdict(list)
    old_in: Dict[int, List[Tuple[Hashable, int]]] = defaultdict(list)
    new_in: Dict[int, List[Tuple[Hashable, int]]] = defaultdict(list)
    for src, dst, label in old_edges:
        old_out[src].append((label, dst))
        old_in[dst].append((label, src))
    for src, dst, label in new_edges:
        new_out[src].append((label, dst))
        new_in[dst].append((label, src))

    # -- forward pairing from the entries --------------------------------
    new2old: Dict[int, int] = {new_entry: old_entry}
    old2new: Dict[int, int] = {old_entry: new_entry}
    queue = deque([new_entry])
    while queue:
        node = queue.popleft()
        image = new2old[node]
        groups_new: Dict[Hashable, List[int]] = defaultdict(list)
        groups_old: Dict[Hashable, List[int]] = defaultdict(list)
        for label, dst in new_out.get(node, []):
            groups_new[label].append(dst)
        for label, dst in old_out.get(image, []):
            groups_old[label].append(dst)
        for label, new_dsts in groups_new.items():
            old_dsts = groups_old.get(label)
            if old_dsts is None or len(old_dsts) != len(new_dsts):
                continue  # ambiguous fan-out: leave unmatched (dirty)
            for nd, od in zip(sorted(new_dsts), sorted(old_dsts)):
                if nd in new2old or od in old2new:
                    continue  # first proposal wins; conflicts stay dirty
                new2old[nd] = od
                old2new[od] = nd
                queue.append(nd)

    # -- local cleanliness: in-edge bijection ----------------------------
    clean: Set[int] = set()
    for node, image in new2old.items():
        new_preds = []
        good = True
        for label, src in new_in.get(node, []):
            mapped = new2old.get(src)
            if mapped is None:
                good = False
                break
            new_preds.append((label, mapped))
        if not good:
            continue
        old_preds = [(label, src) for label, src in old_in.get(image, [])]
        if Counter(new_preds) == Counter(old_preds):
            clean.add(node)

    # -- predecessor closure (greatest fixpoint) -------------------------
    changed = True
    while changed:
        changed = False
        for node in list(clean):
            for _label, src in new_in.get(node, []):
                if src not in clean:
                    clean.discard(node)
                    changed = True
                    break

    return new2old, clean


def clean_frontier(
    clean: Set[int], new_edges: Iterable[LabeledEdge]
) -> Tuple[int, ...]:
    """Clean nodes with at least one dirty successor — the only places a
    seeded worklist run can originate new work; sorted for determinism."""
    frontier = {
        src
        for src, dst, _label in new_edges
        if src in clean and dst not in clean
    }
    return tuple(sorted(frontier))


# -- per-family edge labels -------------------------------------------------


def bool_edge_label(edge) -> Hashable:
    """Transfer-relevant content of a :class:`BoolEdge`.

    Checks matter only through the checked variable (both solvers prune
    / record on the bit; site ids and lines feed the *alarm* pass, which
    an incremental run recomputes from the new program anyway), assigns
    through (target, sources, const-1), and filters verbatim (the
    relational solver applies them; for FDS they are merely stricter).
    """
    return (
        tuple(check.var for check in edge.checks),
        tuple(
            (assign.target, assign.sources, assign.const_true)
            for assign in edge.assigns
        ),
        tuple(edge.filters),
    )


def tvp_edge_label(edge) -> Hashable:
    """Transfer-relevant content of a :class:`TvpEdge` action: focus
    formulas, fresh-node variable, updates, and check conditions (op_key
    + condition — the pruning a failed check applies depends on the
    condition shape, not on the site id or line)."""
    action = edge.action
    return (
        tuple(str(formula) for formula in action.focus),
        action.new_var,
        tuple(str(update) for update in action.updates),
        tuple((check.op_key, str(check.cond)) for check in action.checks),
    )


def cfg_edge_label(edge) -> Hashable:
    """Transfer-relevant content of a CFG statement edge for the generic
    heap engines.  Lines are excluded except where they leak into states:
    client allocation sites are named ``client:{line}:{class}`` and spec
    allocation sites ``spec:{site_id}:{label}``, so :class:`SNewClient`
    keeps its line and :class:`SCallComp` its site id."""
    from repro.lang.cfg import (
        SAssume,
        SCallClient,
        SCallComp,
        SCopy,
        SLoad,
        SNewClient,
        SNop,
        SNull,
        SReturn,
        SStore,
    )

    stm = edge.stm
    kind = type(stm).__name__
    if isinstance(stm, SNewClient):
        return (kind, stm.dst, stm.class_name, stm.line)
    if isinstance(stm, SCallComp):
        return (kind, stm.op_key, stm.bindings, stm.site_id)
    if isinstance(stm, SCopy):
        return (kind, stm.dst, stm.src, stm.type)
    if isinstance(stm, SNull):
        return (kind, stm.dst, stm.type)
    if isinstance(stm, SLoad):
        return (kind, stm.dst, stm.base, stm.field, stm.type)
    if isinstance(stm, SStore):
        return (kind, stm.base, stm.field, stm.src, stm.type)
    if isinstance(stm, SAssume):
        return (kind, stm.lhs, stm.rhs, stm.equal)
    if isinstance(stm, SCallClient):
        return (kind, stm.callee, stm.receiver, stm.args, stm.result)
    if isinstance(stm, SReturn):
        return (kind, stm.var)
    if isinstance(stm, SNop):
        return (kind,)
    return (kind, str(stm))
