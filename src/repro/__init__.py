"""Reproduction of *Deriving Specialized Program Analyses for Certifying
Component-Client Conformance* (Ramalingam, Warshavsky, Field, Goyal, Sagiv —
PLDI 2002).

The package implements the paper's staged certification pipeline:

1. :mod:`repro.easl` — the Easl specification language in which a component
   author describes component behaviour and ``requires`` constraints.
2. :mod:`repro.derivation` — certifier-generation time: a symbolic backward
   weakest-precondition fixpoint that derives instrumentation predicate
   families and per-method update formulae from an Easl specification.
3. :mod:`repro.certifier` — the derived abstraction combined with analysis
   engines: a precise polynomial FDS solver for SCMP clients, a relational
   solver, and a context-sensitive interprocedural solver (Section 8).
4. :mod:`repro.tvp` / :mod:`repro.tvla` — first-order predicate abstraction
   for unrestricted (heap-using) clients, analysed with a TVLA-style
   3-valued-logic engine (Section 5).

Supporting substrates: :mod:`repro.lang` (the Jlite client language),
:mod:`repro.logic` (first-order logic, Kleene logic, decision procedures),
:mod:`repro.generic_analysis` (the Section 3 baselines),
:mod:`repro.runtime` (a concrete interpreter giving ground truth), and
:mod:`repro.suite` (the benchmark corpus).

Quickstart::

    from repro import CertifySession
    from repro.easl.library import cmp_spec

    session = CertifySession(cmp_spec())
    report = session.certify(CLIENT_SOURCE)
    for alarm in report.alarms:
        print(alarm)

For many clients at once — with a process pool, per-job timeouts,
engine fallback, and per-phase tracing — see
:mod:`repro.runtime.batch` and the ``repro batch`` CLI.
"""

from repro.api import (
    CertificationReport,
    CertifyOptions,
    CertifySession,
    certify_program,
    certify_source,
    derive_abstraction,
)

__version__ = "1.1.0"

__all__ = [
    "CertificationReport",
    "CertifyOptions",
    "CertifySession",
    "certify_program",
    "certify_source",
    "derive_abstraction",
    "__version__",
]
