"""Proof-carrying conformance certificates.

The analyzer runs an (expensive) abstract fixpoint; the *certificate* it
emits is the fixpoint annotation itself — the post-fixpoint abstract state
at every reachable CFG node — together with enough fingerprinting (spec
hash, derived-abstraction hash, engine/options fingerprint, source hash)
to pin down exactly which analysis instance it witnesses.  A third party
re-validates the verdict with :class:`CertificateChecker` in one linear
pass over the edges, *without* running any fixpoint: at a fixpoint every
edge's transfer is already subsumed by the successor's recorded state, so
inductiveness + entry coverage + alarm entailment are each a single sweep.

This is the abstraction-carrying-code split (Albert et al.; Seghir 2018)
applied to the paper's conformance certifiers: certify once, check
everywhere.
"""

from repro.cert.model import (
    CERT_FORMAT,
    CERT_VERSION,
    CertificateError,
    ConformanceCertificate,
)
from repro.cert.check import CertificateChecker, CheckResult
from repro.cert.delta import (
    DELTA_FORMAT,
    DELTA_VERSION,
    certificate_hash,
    check_delta,
    delta_text,
    encode_delta,
    load_delta,
    materialize_delta,
    write_delta,
)
from repro.cert.mutate import mutate_certificate

__all__ = [
    "CERT_FORMAT",
    "CERT_VERSION",
    "DELTA_FORMAT",
    "DELTA_VERSION",
    "CertificateError",
    "CertificateChecker",
    "CheckResult",
    "ConformanceCertificate",
    "certificate_hash",
    "check_delta",
    "delta_text",
    "encode_delta",
    "load_delta",
    "materialize_delta",
    "mutate_certificate",
    "write_delta",
]
