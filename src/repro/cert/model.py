"""Certificate data model: canonical JSON, hashing, and delta codecs.

Everything that touches certificate *bytes* lives here so that emission
and checking share one definition of canonical form.  A certificate is a
plain JSON document (``sort_keys`` everywhere, node lists sorted, pools
sorted by serialized text) so that two emission runs over the same
program produce byte-identical artifacts — the CI gate diffs them.

Abstract states are stored per CFG node, hash-consed into a shared pool
where states repeat (TVLA structures, heap-domain states), and
delta-encoded against an already-encoded CFG predecessor where that is
smaller (bit masks XOR, sets as add/drop lists).
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Tuple

from repro.certifier.report import Alarm
from repro.logic.kleene import Kleene
from repro.tvla.three_valued import ThreeValuedStructure

CERT_FORMAT = "repro-cert"
CERT_VERSION = 1

#: Engine stats that are deterministic functions of (spec, program,
#: options) and therefore safe to embed in a byte-stable artifact.
#: Wall-clock ("seconds") and session-memo counters (transfer_hits /
#: transfer_misses depend on what else the session analyzed first) are
#: deliberately excluded, and so are *schedule-dependent* counters
#: ("iterations", "edge_visits", "summary_updates"): an incremental
#: re-certification (:mod:`repro.incr`) reaches the same fixpoint in
#: fewer steps, and its certificate must still be byte-identical to the
#: from-scratch one.  "max_structures" stays: per-node structure sets
#: only grow, so the running maximum equals the final maximum and is a
#: function of the fixpoint itself.
DETERMINISTIC_STATS = (
    "abstraction_preds",
    "breach",
    "completed_rung",
    "contexts",
    "degraded_to",
    "edges",
    "ladder",
    "max_structures",
    "nodes_analyzed",
    "nodes_total",
    "partial",
    "salvaged",
    "sites_resolved",
    "sites_unresolved",
    "variables",
)


class CertificateError(Exception):
    """Raised for structurally malformed certificates."""


# -- canonical JSON and hashing ---------------------------------------------


def canonical_text(payload: object) -> str:
    """The canonical serialization used for hashing and byte-stable pools."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def sha256_text(text: str) -> str:
    return hashlib.sha256(text.encode("utf-8")).hexdigest()


def spec_hash(spec) -> str:
    """Hash of a canonical rendering of the component specification.

    ``ComponentSpec`` has no serializer of its own, so the rendering is
    built here from the stable pieces the analysis actually consumes:
    class fields and the operation signatures.
    """
    classes = []
    for name in sorted(spec.classes):
        decl = spec.classes[name]
        classes.append([name, sorted(decl.fields.items())])
    operations = sorted([op.key, str(op)] for op in spec.operations())
    return sha256_text(
        canonical_text({"name": spec.name, "classes": classes, "operations": operations})
    )


def abstraction_hash(abstraction) -> Optional[str]:
    """Hash of the derived abstraction's textual description.

    ``None`` for the generic heap engines, which run directly on the
    client program without a derived abstraction.
    """
    if abstraction is None:
        return None
    return sha256_text(abstraction.describe())


def options_fingerprint(engine: str, options: Mapping[str, object]) -> str:
    return sha256_text(canonical_text({"engine": engine, "options": dict(options)}))


# -- alarms -----------------------------------------------------------------


def alarm_to_json(alarm: Alarm) -> Dict[str, object]:
    return {
        "site_id": alarm.site_id,
        "line": alarm.line,
        "op_key": alarm.op_key,
        "instance": alarm.instance,
        "definite": bool(alarm.definite),
        "context": alarm.context,
    }


def alarm_sort_key(entry: Mapping[str, object]) -> Tuple:
    return (
        entry["site_id"],
        entry["instance"],
        entry["context"] or "",
        entry["line"],
        entry["op_key"],
        entry["definite"],
    )


def alarms_to_json(alarms: Iterable[Alarm]) -> List[Dict[str, object]]:
    return sorted((alarm_to_json(a) for a in alarms), key=alarm_sort_key)


# -- bit-mask codec (fds / interproc) ---------------------------------------
#
# Node entry is either absolute {"one": hex, "zero": hex} or a delta
# {"ref": pred, "one_x": hex, "zero_x": hex} XORed against the first
# already-encoded CFG predecessor, whichever serializes shorter.


def encode_masks(
    masks: Mapping[int, Tuple[int, int]],
    preds: Mapping[int, List[int]],
    *,
    delta: bool = True,
) -> List[List[object]]:
    out: List[List[object]] = []
    encoded: set = set()
    for node in sorted(masks):
        one, zero = masks[node]
        entry: Dict[str, object] = {"one": format(one, "x"), "zero": format(zero, "x")}
        if delta:
            for pred in preds.get(node, ()):
                if pred in encoded:
                    pone, pzero = masks[pred]
                    candidate = {
                        "ref": pred,
                        "one_x": format(one ^ pone, "x"),
                        "zero_x": format(zero ^ pzero, "x"),
                    }
                    # compare full serialized cost, not just hex digits:
                    # the delta form carries an extra key and longer key
                    # names, which narrow masks never amortize
                    if len(json.dumps(candidate)) < len(json.dumps(entry)):
                        entry = candidate
                    break
        out.append([node, entry])
        encoded.add(node)
    return out


def decode_masks(payload: List[List[object]]) -> Dict[int, Tuple[int, int]]:
    masks: Dict[int, Tuple[int, int]] = {}
    try:
        for node, entry in payload:
            if "ref" in entry:
                ref = entry["ref"]
                if ref not in masks:
                    raise CertificateError(
                        f"mask delta at node {node} references undecoded node {ref}"
                    )
                pone, pzero = masks[ref]
                masks[node] = (pone ^ int(entry["one_x"], 16), pzero ^ int(entry["zero_x"], 16))
            else:
                masks[node] = (int(entry["one"], 16), int(entry["zero"], 16))
    except (TypeError, ValueError, KeyError) as exc:
        raise CertificateError(f"malformed mask annotation: {exc}") from exc
    return masks


# -- integer-set codec (relational valuations, tvla structure ids) ----------
#
# Node entry is either absolute {"vals": [...]} or {"ref": pred,
# "add": [...], "drop": [...]} relative to the first already-encoded
# predecessor, whichever holds fewer integers.


def encode_int_sets(
    sets: Mapping[int, FrozenSet[int]],
    preds: Mapping[int, List[int]],
    *,
    delta: bool = True,
) -> List[List[object]]:
    out: List[List[object]] = []
    encoded: set = set()
    for node in sorted(sets):
        values = sets[node]
        entry: Dict[str, object] = {"vals": sorted(values)}
        if delta:
            for pred in preds.get(node, ()):
                if pred in encoded:
                    base = sets[pred]
                    add = sorted(values - base)
                    drop = sorted(base - values)
                    candidate = {"ref": pred, "add": add, "drop": drop}
                    if len(json.dumps(candidate)) < len(json.dumps(entry)):
                        entry = candidate
                    break
        out.append([node, entry])
        encoded.add(node)
    return out


def decode_int_sets(payload: List[List[object]]) -> Dict[int, FrozenSet[int]]:
    sets: Dict[int, FrozenSet[int]] = {}
    try:
        for node, entry in payload:
            if "ref" in entry:
                ref = entry["ref"]
                if ref not in sets:
                    raise CertificateError(
                        f"set delta at node {node} references undecoded node {ref}"
                    )
                sets[node] = (sets[ref] | frozenset(entry["add"])) - frozenset(entry["drop"])
            else:
                sets[node] = frozenset(entry["vals"])
    except (TypeError, KeyError) as exc:
        raise CertificateError(f"malformed set annotation: {exc}") from exc
    return sets


def absolute_annotation(annotation: Mapping[str, object]) -> Dict[str, object]:
    """Re-encode an annotation with delta encoding *and* structure
    sharing disabled (for size comparisons in EXPERIMENTS.md E11).

    Pooled annotations (tvla, generic) get each node's structures
    inlined in place of pool indices; delta-encoded node entries are
    flattened to absolute form.  The result is a size baseline, not a
    checkable certificate.
    """
    result = dict(annotation)
    kind = annotation.get("kind")
    if kind in ("tvla", "generic"):
        pool = annotation.get("pool", [])
        if kind == "tvla" and annotation.get("mode") == "relational":
            sets = decode_int_sets(annotation["nodes"])
            result["nodes"] = [
                [node, [pool[i] for i in sorted(sets[node])]]
                for node in sorted(sets)
            ]
        else:
            result["nodes"] = [
                [node, pool[i]] for node, i in annotation["nodes"]
            ]
        result.pop("pool", None)
    elif kind in ("fds", "relational"):
        if kind == "fds":
            masks = decode_masks(annotation["nodes"])
            result["nodes"] = encode_masks(masks, {}, delta=False)
        else:
            sets = decode_int_sets(annotation["nodes"])
            result["nodes"] = encode_int_sets(sets, {}, delta=False)
    elif kind == "interproc":
        contexts = []
        for ctx in annotation["contexts"]:
            ctx = dict(ctx)
            ctx["nodes"] = encode_masks(decode_masks(ctx["nodes"]), {}, delta=False)
            contexts.append(ctx)
        result["contexts"] = contexts
    return result


# -- three-valued structure codec -------------------------------------------
#
# Nodes are renumbered 0..k-1 in the canonical-key sort order (vector of
# Kleene values, then summary bit), which is total on canonicalized
# structures: canonicalization leaves at most one node per canonical
# vector.  Kleene values serialize as their enum ints (FALSE=0, TRUE=1,
# HALF=2).


def structure_to_json(structure: ThreeValuedStructure, preds) -> Dict[str, object]:
    order = sorted(
        structure.nodes,
        key=lambda n: (
            tuple(v._value_ for v in structure.canonical_vector(n, preds)),
            structure.summary[n],
        ),
    )
    index = {node: i for i, node in enumerate(order)}
    # skip explicit FALSE entries: absent means 0, so the serialization
    # is a normal form regardless of how tables were mutated
    nullary = sorted(
        [pred, value._value_]
        for pred, value in structure.nullary.items()
        if value._value_ != 0
    )
    unary = sorted(
        [pred, index[node], value._value_]
        for pred, table in structure.unary.items()
        for node, value in table.items()
        if value._value_ != 0
    )
    binary = sorted(
        [pred, index[a], index[b], value._value_]
        for pred, table in structure.binary.items()
        for (a, b), value in table.items()
        if value._value_ != 0
    )
    return {
        "nodes": len(order),
        "summary": [1 if structure.summary[n] else 0 for n in order],
        "nullary": nullary,
        "unary": unary,
        "binary": binary,
    }


def structure_from_json(payload: Mapping[str, object]) -> ThreeValuedStructure:
    try:
        structure = ThreeValuedStructure()
        nodes = [
            structure.new_node(summary=bool(bit)) for bit in payload["summary"]
        ]
        if len(nodes) != payload["nodes"]:
            raise CertificateError("structure node count disagrees with summary bits")
        for pred, value in payload["nullary"]:
            structure.set(pred, (), Kleene(value))
        for pred, i, value in payload["unary"]:
            structure.set(pred, (nodes[i],), Kleene(value))
        for pred, i, j, value in payload["binary"]:
            structure.set(pred, (nodes[i], nodes[j]), Kleene(value))
        return structure
    except CertificateError:
        raise
    except (TypeError, ValueError, KeyError, IndexError) as exc:
        raise CertificateError(f"malformed structure: {exc}") from exc


# -- hash-consed pools ------------------------------------------------------


class Pool:
    """Hash-consed pool of serialized states, sorted by canonical text so
    pool indices are deterministic."""

    def __init__(self) -> None:
        self._entries: List[object] = []
        self._texts: List[str] = []
        self._index: Dict[str, int] = {}

    def add(self, payload: object) -> int:
        text = canonical_text(payload)
        if text not in self._index:
            self._index[text] = len(self._entries)
            self._entries.append(payload)
            self._texts.append(text)
        return self._index[text]

    def finish(self) -> Tuple[List[object], Dict[int, int]]:
        """Sort entries by text; returns (entries, old index -> new index)."""
        order = sorted(range(len(self._entries)), key=lambda i: self._texts[i])
        remap = {old: new for new, old in enumerate(order)}
        return [self._entries[i] for i in order], remap


# -- certificate wrapper ----------------------------------------------------


@dataclass
class ConformanceCertificate:
    """A versioned, deterministic, JSON-serializable fixpoint certificate."""

    payload: Dict[str, object]

    @property
    def engine(self) -> str:
        return self.payload.get("engine", "?")

    @property
    def subject(self) -> str:
        return self.payload.get("subject", "?")

    @property
    def partial(self) -> bool:
        return bool(self.payload.get("verdict", {}).get("partial"))

    def to_json(self) -> Dict[str, object]:
        return self.payload

    def text(self) -> str:
        """Byte-stable pretty serialization (what `--emit-cert` writes)."""
        return json.dumps(self.payload, sort_keys=True, indent=2) + "\n"

    def write(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as handle:
            handle.write(self.text())

    @staticmethod
    def load(path: str) -> "ConformanceCertificate":
        with open(path, "r", encoding="utf-8") as handle:
            payload = json.load(handle)
        if not isinstance(payload, dict):
            raise CertificateError(f"{path}: certificate is not a JSON object")
        return ConformanceCertificate(payload)
