"""Cert-to-cert delta certificates.

A *delta certificate* encodes a child :class:`ConformanceCertificate`
against a parent certificate, generalizing the intra-certificate codecs
in :mod:`repro.cert.model` (masks XOR against a CFG predecessor, int
sets as add/drop lists, hash-consed pools) to the cert-to-cert axis:
after a small client edit, most of the payload — spec fingerprinting,
options, the bulk of the source text, and most pool entries — is
unchanged, so shipping only the difference is the certificate-size
analogue of incremental recertification (Albert et al., "Certificate
Size Reduction in Abstraction-Carrying Code").

The encoding is exact and self-validating: it records the sha256 of the
parent's canonical text and of the child's, so materialization fails
loudly on a tampered or mismatched parent, and a materialized child is
bit-for-bit the original (the hash check proves it).  Checking a delta
is therefore: verify the parent hash, materialize, and hand the child to
the ordinary linear-pass :class:`repro.cert.check.CertificateChecker` —
the delta layer adds no trusted code beyond two hash comparisons.

Layout (all JSON, ``sort_keys`` like everything else in this package)::

    {
      "format": "repro-cert-delta",
      "version": 1,
      "parent_hash": "<sha256 of parent.text()>",
      "child_hash":  "<sha256 of child.text()>",
      "ops": {
        "drop":   ["key", ...],                # top-level keys removed
        "set":    {"key": <absolute value>},   # changed, no special codec
        "source": [["=", i1, i2], ["+", ["line\n", ...]], ...],
        "annotation": {
          "drop": [...], "set": {...},
          "pool": [["=", i1, i2], ["+", [<entries>]], ...]
        }
      }
    }

``source`` ops splice the child source from parent source lines (keep
ranges) plus inserted lines; ``pool`` ops do the same over the parent's
sorted state pool — both stay valid because pools are sorted by
canonical text on both sides, so shared entries appear as runs.
"""

from __future__ import annotations

import copy
import difflib
import json
from typing import Dict, List, Mapping, Optional, Tuple

from repro.cert.model import (
    CertificateError,
    ConformanceCertificate,
    canonical_text,
    sha256_text,
)

DELTA_FORMAT = "repro-cert-delta"
DELTA_VERSION = 1

_MISSING = object()


def certificate_hash(certificate: ConformanceCertificate) -> str:
    """sha256 of the byte-stable serialization (what the store indexes)."""
    return sha256_text(certificate.text())


# -- splice ops (shared by the source and pool codecs) ----------------------


def _encode_splice(old: List[object], new: List[object]) -> List[List[object]]:
    """Encode ``new`` as keep-ranges over ``old`` plus inserted runs."""
    old_keys = [canonical_text(item) for item in old]
    new_keys = [canonical_text(item) for item in new]
    matcher = difflib.SequenceMatcher(a=old_keys, b=new_keys, autojunk=False)
    ops: List[List[object]] = []
    for tag, i1, i2, j1, j2 in matcher.get_opcodes():
        if tag == "equal":
            ops.append(["=", i1, i2])
        elif tag in ("replace", "insert"):
            ops.append(["+", list(new[j1:j2])])
        # "delete": parent-only run, nothing to emit
    return ops


def _apply_splice(old: List[object], ops: object) -> List[object]:
    if not isinstance(ops, list):
        raise CertificateError("delta: splice ops must be a list")
    out: List[object] = []
    for op in ops:
        if not isinstance(op, list) or not op:
            raise CertificateError("delta: malformed splice op")
        if op[0] == "=":
            if len(op) != 3:
                raise CertificateError("delta: malformed keep op")
            i1, i2 = op[1], op[2]
            if not (isinstance(i1, int) and isinstance(i2, int)):
                raise CertificateError("delta: keep op indices must be ints")
            if not (0 <= i1 <= i2 <= len(old)):
                raise CertificateError("delta: keep op out of range")
            out.extend(old[i1:i2])
        elif op[0] == "+":
            if len(op) != 2 or not isinstance(op[1], list):
                raise CertificateError("delta: malformed insert op")
            out.extend(op[1])
        else:
            raise CertificateError(f"delta: unknown splice op {op[0]!r}")
    return out


# -- annotation delta -------------------------------------------------------


def _encode_annotation(parent: Mapping[str, object], child: Mapping[str, object]):
    ops: Dict[str, object] = {}
    drop = sorted(k for k in parent if k not in child)
    if drop:
        ops["drop"] = drop
    absolute: Dict[str, object] = {}
    for key in sorted(child):
        old = parent.get(key, _MISSING)
        new = child[key]
        if old is not _MISSING and canonical_text(old) == canonical_text(new):
            continue
        if (
            key == "pool"
            and isinstance(old, list)
            and isinstance(new, list)
        ):
            ops["pool"] = _encode_splice(old, new)
        else:
            absolute[key] = new
    if absolute:
        ops["set"] = absolute
    return ops


def _apply_annotation(parent: Dict[str, object], ops: Mapping[str, object]):
    result = dict(parent)
    for key in ops.get("drop", []):
        result.pop(key, None)
    if "pool" in ops:
        old_pool = parent.get("pool")
        if not isinstance(old_pool, list):
            raise CertificateError("delta: pool ops but parent has no pool")
        result["pool"] = _apply_splice(old_pool, ops["pool"])
    set_ops = ops.get("set", {})
    if not isinstance(set_ops, Mapping):
        raise CertificateError("delta: annotation set ops must be an object")
    result.update(set_ops)
    return result


# -- encode / materialize ---------------------------------------------------


def encode_delta(
    parent: ConformanceCertificate, child: ConformanceCertificate
) -> Dict[str, object]:
    """Encode ``child`` as a delta against ``parent``.

    Works for any certificate pair (worst case everything lands in
    ``set``); pays off when the pair shares spec/options/engine and most
    of the source and annotation, i.e. parent/child of a small edit.
    """
    ops: Dict[str, object] = {}
    drop = sorted(k for k in parent.payload if k not in child.payload)
    if drop:
        ops["drop"] = drop
    absolute: Dict[str, object] = {}
    for key in sorted(child.payload):
        old = parent.payload.get(key, _MISSING)
        new = child.payload[key]
        if old is not _MISSING and canonical_text(old) == canonical_text(new):
            continue
        if key == "source" and isinstance(old, str) and isinstance(new, str):
            ops["source"] = _encode_splice(
                old.splitlines(keepends=True), new.splitlines(keepends=True)
            )
        elif (
            key == "annotation"
            and isinstance(old, Mapping)
            and isinstance(new, Mapping)
        ):
            ops["annotation"] = _encode_annotation(old, new)
        else:
            absolute[key] = new
    if absolute:
        ops["set"] = absolute
    return {
        "format": DELTA_FORMAT,
        "version": DELTA_VERSION,
        "parent_hash": certificate_hash(parent),
        "child_hash": certificate_hash(child),
        "ops": ops,
    }


def materialize_delta(
    parent: ConformanceCertificate, delta: Mapping[str, object]
) -> ConformanceCertificate:
    """Rebuild the child certificate; raises ``CertificateError`` if the
    parent is not the one the delta was encoded against (hash mismatch —
    this is the tamper check) or the rebuilt child fails its own hash."""
    if delta.get("format") != DELTA_FORMAT:
        raise CertificateError(
            f"delta: unknown format {delta.get('format')!r}"
        )
    if delta.get("version") != DELTA_VERSION:
        raise CertificateError(
            f"delta: unsupported version {delta.get('version')!r}"
        )
    parent_hash = certificate_hash(parent)
    if delta.get("parent_hash") != parent_hash:
        raise CertificateError(
            "delta: parent certificate does not match parent_hash "
            f"(expected {delta.get('parent_hash')}, have {parent_hash})"
        )
    ops = delta.get("ops", {})
    if not isinstance(ops, Mapping):
        raise CertificateError("delta: ops must be an object")
    payload = copy.deepcopy(parent.payload)
    for key in ops.get("drop", []):
        payload.pop(key, None)
    if "source" in ops:
        old_source = parent.payload.get("source")
        if not isinstance(old_source, str):
            raise CertificateError("delta: source ops but parent source is not text")
        payload["source"] = "".join(
            str(piece)
            for piece in _apply_splice(old_source.splitlines(keepends=True), ops["source"])
        )
    if "annotation" in ops:
        old_annotation = parent.payload.get("annotation")
        if not isinstance(old_annotation, Mapping):
            raise CertificateError(
                "delta: annotation ops but parent annotation is not an object"
            )
        ann_ops = ops["annotation"]
        if not isinstance(ann_ops, Mapping):
            raise CertificateError("delta: annotation ops must be an object")
        payload["annotation"] = _apply_annotation(dict(old_annotation), ann_ops)
    set_ops = ops.get("set", {})
    if not isinstance(set_ops, Mapping):
        raise CertificateError("delta: set ops must be an object")
    payload.update(copy.deepcopy(dict(set_ops)))
    child = ConformanceCertificate(payload)
    child_hash = certificate_hash(child)
    if delta.get("child_hash") != child_hash:
        raise CertificateError(
            "delta: materialized child does not match child_hash "
            f"(expected {delta.get('child_hash')}, have {child_hash})"
        )
    return child


# -- serialization ----------------------------------------------------------


def delta_text(delta: Mapping[str, object]) -> str:
    """Byte-stable serialization, mirroring ``ConformanceCertificate.text``."""
    return json.dumps(delta, sort_keys=True, indent=2) + "\n"


def write_delta(delta: Mapping[str, object], path: str) -> None:
    with open(path, "w", encoding="utf-8") as handle:
        handle.write(delta_text(delta))


def load_delta(path: str) -> Dict[str, object]:
    with open(path, "r", encoding="utf-8") as handle:
        payload = json.load(handle)
    if not isinstance(payload, dict):
        raise CertificateError(f"{path}: delta certificate is not a JSON object")
    return payload


def check_delta(
    parent: ConformanceCertificate,
    delta: Mapping[str, object],
    checker,
    *,
    spec=None,
) -> Tuple[object, Optional[ConformanceCertificate]]:
    """Materialize parent+delta and run the independent checker.

    Returns ``(CheckResult, child_or_None)``.  Materialization failures
    (tampered parent, malformed ops, child-hash mismatch) come back as a
    typed reject with ``kind="delta-mismatch"`` and no child.
    """
    from repro.cert.check import CheckResult

    try:
        child = materialize_delta(parent, delta)
    except CertificateError as exc:
        return (
            CheckResult(
                ok=False,
                kind="delta-mismatch",
                detail=str(exc),
                engine=str(delta.get("engine", parent.engine)),
                subject=parent.subject,
            ),
            None,
        )
    return checker.check(child, spec=spec), child
