"""Certificate mutation for negative testing.

The fuzz oracle and the property tests need *guaranteed-reject*
mutations: tamper with a certificate such that a sound checker must
refuse it.  Arbitrary bit flips do not qualify — weakening a sink node's
annotation can produce another perfectly valid fixpoint.  The mutations
here are chosen so rejection is provable:

``strengthen``
    Remove one *may*-fact from one node's annotation (a may-1/may-0
    bit, a relational valuation, a pooled structure membership, a
    points-to/heap target...).  Either the entry's initial state or some
    predecessor transfer re-demands the removed fact, so the
    inductiveness or entry check fails.  Must-facts (e.g. a shape
    graph's ``definite`` edges) are never touched: removing those is a
    weakening.

``verdict``
    Tamper with the claimed alarm list; the replayed alarms no longer
    match.

``version``
    Bump the format version; the checker refuses to interpret it.

For pooled annotations the mutated structure is appended as a *new*
pool entry and only the chosen node is repointed, so other nodes
sharing the original entry are unaffected.
"""

from __future__ import annotations

import copy
from typing import Dict, List, Tuple

from repro.cert import model

KINDS = ("strengthen", "verdict", "version")


def mutate_certificate(payload: Dict, rng, kind: str = "auto") -> Tuple[Dict, str]:
    """Return a (mutated deep copy, kind actually applied) pair.

    ``rng`` is a :class:`random.Random`; ``kind`` is one of
    :data:`KINDS` or ``"auto"`` to pick one at random.  Falls back to
    ``verdict`` when a ``strengthen`` target cannot be found (e.g. an
    annotation with no removable may-facts).
    """
    mutated = copy.deepcopy(payload)
    if kind == "auto":
        kind = rng.choice(KINDS)
    if kind == "version":
        mutated["version"] = int(mutated.get("version", 0)) + 1
        return mutated, "version"
    if kind == "verdict":
        _mutate_verdict(mutated, rng)
        return mutated, "verdict"
    if kind != "strengthen":
        raise ValueError(f"unknown mutation kind {kind!r}")
    if _mutate_strengthen(mutated, rng):
        return mutated, "strengthen"
    _mutate_verdict(mutated, rng)
    return mutated, "verdict"


def _mutate_verdict(payload: Dict, rng) -> None:
    verdict = payload.setdefault("verdict", {})
    alarms = verdict.get("alarms") or []
    if alarms:
        alarms = list(alarms)
        del alarms[rng.randrange(len(alarms))]
    else:
        alarms = [
            {
                "site_id": 0,
                "line": 0,
                "op_key": "forged.op",
                "instance": "forged",
                "definite": False,
                "context": None,
            }
        ]
    verdict["alarms"] = alarms
    verdict["certified"] = not alarms


# -- strengthening ------------------------------------------------------------


def _mutate_strengthen(payload: Dict, rng) -> bool:
    annotation = payload.get("annotation")
    if not isinstance(annotation, dict):
        return False
    kind = annotation.get("kind")
    if kind in ("fds", "relational"):
        return _strengthen_boolprog(annotation, rng)
    if kind == "interproc":
        contexts = annotation.get("contexts") or []
        order = list(range(len(contexts)))
        rng.shuffle(order)
        for index in order:
            if _strengthen_boolprog(contexts[index], rng, kind="fds"):
                return True
        return False
    if kind == "tvla":
        if annotation.get("mode") == "relational":
            return _strengthen_id_sets(annotation, rng)
        return _strengthen_pooled_structure(annotation, rng)
    if kind == "generic":
        return _strengthen_pooled_heap(annotation, rng)
    return False


def _strengthen_boolprog(annotation: Dict, rng, kind: str = None) -> bool:
    """Drop one set may-bit (fds/interproc masks) or one valuation
    (relational sets)."""
    kind = kind or annotation.get("kind")
    if kind == "relational":
        states = model.decode_int_sets(annotation["nodes"])
        coords = [
            (node, value)
            for node, values in states.items()
            for value in sorted(values)
        ]
        if not coords:
            return False
        node, value = rng.choice(sorted(coords))
        states[node] = frozenset(states[node]) - {value}
        annotation["nodes"] = model.encode_int_sets(
            {n: frozenset(v) for n, v in states.items()}, {}
        )
        return True
    masks = model.decode_masks(annotation["nodes"])
    coords: List[Tuple[int, int, int]] = []  # (node, which, bit)
    for node, (one, zero) in masks.items():
        for bit in range(max(one, zero).bit_length()):
            if one >> bit & 1:
                coords.append((node, 0, bit))
            if zero >> bit & 1:
                coords.append((node, 1, bit))
    if not coords:
        return False
    node, which, bit = rng.choice(sorted(coords))
    one, zero = masks[node]
    if which == 0:
        one &= ~(1 << bit)
    else:
        zero &= ~(1 << bit)
    masks[node] = (one, zero)
    annotation["nodes"] = model.encode_masks(masks, {})
    return True


def _strengthen_id_sets(annotation: Dict, rng) -> bool:
    """tvla-relational: drop one structure id from one node's bucket."""
    id_sets = model.decode_int_sets(annotation["nodes"])
    coords = [
        (node, i) for node, ids in id_sets.items() for i in sorted(ids)
    ]
    if not coords:
        return False
    node, i = rng.choice(sorted(coords))
    id_sets[node] = frozenset(id_sets[node]) - {i}
    annotation["nodes"] = model.encode_int_sets(
        {n: frozenset(v) for n, v in id_sets.items()}, {}
    )
    return True


def _repoint_node(annotation: Dict, rng, mutate_entry) -> bool:
    """Pooled single-structure annotations (tvla-independent, generic):
    pick a node, mutate a *copy* of its pool entry with ``mutate_entry``,
    append the copy as a new pool entry and repoint only that node."""
    nodes = annotation.get("nodes") or []
    pool = annotation.get("pool") or []
    order = list(range(len(nodes)))
    rng.shuffle(order)
    for index in order:
        node, pool_id = nodes[index]
        entry = copy.deepcopy(pool[pool_id])
        if not mutate_entry(entry, rng):
            continue
        pool.append(entry)
        nodes[index] = [node, len(pool) - 1]
        return True
    return False


def _strengthen_pooled_structure(annotation: Dict, rng) -> bool:
    return _repoint_node(annotation, rng, _drop_structure_fact)


def _drop_structure_fact(entry: Dict, rng) -> bool:
    """Remove one HALF/TRUE fact from a serialized three-valued
    structure (set it to FALSE by dropping the tuple — absent means 0).
    Any recorded fact is may-information in the join order, so removing
    one makes the join-subsumption check at some edge fail."""
    coords = []
    for table in ("nullary", "unary", "binary"):
        rows = entry.get(table) or []
        for i, row in enumerate(rows):
            if row[-1] != 0:
                coords.append((table, i))
    if not coords:
        return False
    table, i = rng.choice(sorted(coords))
    del entry[table][i]
    return True


def _strengthen_pooled_heap(annotation: Dict, rng) -> bool:
    domain = annotation.get("domain", "")
    if domain == "shapegraph":
        return _repoint_node(annotation, rng, _drop_shape_fact)
    return _repoint_node(annotation, rng, _drop_pt_fact)


def _drop_pt_fact(entry: Dict, rng) -> bool:
    """allocsite domains: drop one points-to target, heap target, or
    multiplicity entry — all may-facts."""
    coords = []
    for i, (_var, targets) in enumerate(entry.get("pts") or []):
        for j in range(len(targets)):
            coords.append(("pts", i, j))
    for i, (_site, _field, targets) in enumerate(entry.get("heap") or []):
        for j in range(len(targets)):
            coords.append(("heap", i, j))
    for i in range(len(entry.get("mult") or [])):
        coords.append(("mult", i, -1))
    if not coords:
        return False
    table, i, j = rng.choice(sorted(coords))
    if table == "mult":
        del entry["mult"][i]
        return True
    row = entry[table][i]
    targets = row[-1]
    del targets[j]
    if not targets and table == "heap":
        del entry[table][i]
    return True


def _drop_shape_fact(entry: Dict, rng) -> bool:
    """shapegraph: drop only may-facts — a summary node, a field-edge
    target.  ``definite`` entries are must-information; removing one
    would *weaken* the annotation, which a sound checker may accept."""
    coords = []
    # only flag-1 summary rows: a flag-0 row can be re-derived from the
    # edge tables by ShapeState normalization, making the drop a no-op
    for i, row in enumerate(entry.get("summary") or []):
        if row[-1]:
            coords.append(("summary", i, -1))
    for i, (_node, _field, targets) in enumerate(entry.get("edges") or []):
        for j in range(len(targets)):
            coords.append(("edges", i, j))
    if not coords:
        return False
    table, i, j = rng.choice(sorted(coords))
    if table == "summary":
        del entry["summary"][i]
        return True
    row = entry["edges"][i]
    targets = row[-1]
    del targets[j]
    if not targets:
        del entry["edges"][i]
    return True
