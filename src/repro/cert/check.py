"""The lightweight independent certificate checker.

:class:`CertificateChecker` validates a :class:`ConformanceCertificate`
without running any fixpoint: because the annotation claims to *be* a
fixpoint, one linear pass over the CFG edges suffices —

1. **inductive**: each node's recorded state subsumes the transfer of
   every annotated predecessor (the transfer functions are the engines'
   own, including the compiled formula evaluators, so checker and
   analyzer agree on semantics by construction);
2. **covering**: the annotated node set is transfer-closed and contains
   the entry with its initial state, so it over-approximates every
   reachable node;
3. **entailing**: replaying the per-edge checks over the recorded states
   reproduces the claimed alarm set exactly (at a fixpoint, every edge
   was last evaluated on its source's final state, so the replay sees
   precisely what the analyzer saw).

Accept/reject is typed (:class:`CheckResult`); a reject carries the
first violating edge.  The checker keeps an internal
:class:`~repro.api.CertifySession` per (spec, options) so that checking
many certificates amortizes derivation and transformation the same way
emission did — that, plus skipping the fixpoint, is where the check-time
advantage comes from.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.api import ENGINES, CertifyOptions, CertifySession
from repro.cert import model
from repro.cert.model import CertificateError, ConformanceCertificate
from repro.certifier.fds import FdsSolver
from repro.certifier.interproc import InterproceduralCertifier
from repro.certifier.relational import RelationalSolver
from repro.certifier.report import Alarm
from repro.easl.library import UnknownSpecError, get_spec
from repro.easl.spec import ComponentSpec
from repro.generic_analysis.framework import (
    _SpecRunner,
    _transfer as generic_transfer,
)
from repro.runtime.trace import phase
from repro.logic import packed as packed_kernel
from repro.tvla.engine import _alarm_list


@dataclass
class CheckResult:
    """Typed accept/reject verdict for one certificate."""

    ok: bool
    kind: str  # "accepted" or a reject kind
    detail: str = ""
    engine: str = ""
    subject: str = ""
    #: first violating edge (src, dst) for inductiveness rejects;
    #: interproc prefixes the context method
    edge: Optional[Tuple] = None
    nodes: int = 0
    edges: int = 0
    stats: Dict[str, object] = field(default_factory=dict)

    def describe(self) -> str:
        verdict = "ACCEPT" if self.ok else f"REJECT[{self.kind}]"
        text = f"{verdict} {self.subject} ({self.engine})"
        if self.ok:
            text += f": {self.nodes} node(s), {self.edges} edge transfer(s)"
        else:
            if self.detail:
                text += f": {self.detail}"
            if self.edge is not None:
                text += f" (first violating edge {self.edge})"
        return text


class _Reject(Exception):
    def __init__(self, kind: str, detail: str, edge: Optional[Tuple] = None):
        super().__init__(detail)
        self.kind = kind
        self.detail = detail
        self.edge = edge


class CertificateChecker:
    """Validates fixpoint certificates in one linear pass per edge set.

    Reusable: sessions (and thus derived abstractions, inlining, and
    client transformations) are cached per (spec, options fingerprint),
    so checking a batch of certificates against one spec derives once.
    """

    def __init__(self, packed: Optional[bool] = None) -> None:
        #: structure-representation preference for replaying transfers;
        #: ``None`` defers to ``REPRO_PACKED``.  The verdict is identical
        #: either way — packed only changes how fast the replay runs.
        self.packed = packed
        self._specs: Dict[str, ComponentSpec] = {}
        self._sessions: Dict[Tuple[str, str], CertifySession] = {}
        # parse/transform/derivation results are deterministic functions
        # of (spec, options, engine, source); the source hash is verified
        # against the embedded text before it is used as a key, so
        # memoizing them does not extend the trusted base — it only
        # amortizes checking a batch of certificates over one build
        self._builds: Dict[Tuple[str, str, str, str], tuple] = {}
        self._certifiers: Dict[Tuple[str, str, str, str], object] = {}
        self._spec_hashes: Dict[str, str] = {}

    # -- session plumbing ---------------------------------------------------

    def _resolve_spec(self, name: str, spec: Optional[ComponentSpec]):
        if spec is not None:
            return spec
        if name not in self._specs:
            try:
                self._specs[name] = get_spec(name)
            except UnknownSpecError:
                raise _Reject(
                    "malformed",
                    f"unknown spec {name!r} (not in the library; pass spec=)",
                ) from None
        return self._specs[name]

    def _session(self, spec: ComponentSpec, opts: Dict[str, object]):
        key = (spec.name, model.canonical_text(opts))
        if key not in self._sessions:
            self._sessions[key] = CertifySession(
                spec,
                options=CertifyOptions(
                    entry=opts.get("entry"),
                    prune_requires=bool(opts.get("prune_requires", True)),
                    inline_depth=int(opts.get("inline_depth", 12)),
                    worklist=str(opts.get("worklist", "rpo")),
                    packed=self.packed,
                ),
            )
        return self._sessions[key]

    # -- entry point --------------------------------------------------------

    def check(
        self,
        certificate,
        *,
        spec: Optional[ComponentSpec] = None,
    ) -> CheckResult:
        """Validate one certificate (a :class:`ConformanceCertificate`,
        or its payload dict)."""
        payload = (
            certificate.payload
            if isinstance(certificate, ConformanceCertificate)
            else certificate
        )
        engine = str(payload.get("engine", "?")) if isinstance(payload, dict) else "?"
        subject = str(payload.get("subject", "?")) if isinstance(payload, dict) else "?"
        with phase("check", engine=engine) as meta:
            try:
                result = self._check(payload, spec)
            except _Reject as reject:
                result = CheckResult(
                    ok=False,
                    kind=reject.kind,
                    detail=reject.detail,
                    engine=engine,
                    subject=subject,
                    edge=reject.edge,
                )
            except CertificateError as error:
                result = CheckResult(
                    ok=False,
                    kind="malformed",
                    detail=str(error),
                    engine=engine,
                    subject=subject,
                )
            except Exception as error:
                # a tampered annotation can crash the engines' own
                # transfer functions; an adversarial certificate must
                # never crash the checker
                result = CheckResult(
                    ok=False,
                    kind="malformed",
                    detail=f"{type(error).__name__}: {error}",
                    engine=engine,
                    subject=subject,
                )
            meta["ok"] = result.ok
            meta["kind"] = result.kind
        return result

    def _check(self, payload, spec: Optional[ComponentSpec]) -> CheckResult:
        if not isinstance(payload, dict):
            raise _Reject("malformed", "certificate is not a JSON object")
        if payload.get("format") != model.CERT_FORMAT:
            raise _Reject(
                "malformed", f"unknown format {payload.get('format')!r}"
            )
        if payload.get("version") != model.CERT_VERSION:
            raise _Reject(
                "version-mismatch",
                f"certificate version {payload.get('version')!r}, "
                f"checker speaks {model.CERT_VERSION}",
            )
        engine = payload.get("engine")
        if engine not in ENGINES or engine == "auto":
            raise _Reject("malformed", f"unknown engine {engine!r}")
        subject = str(payload.get("subject", "?"))

        spec_obj = self._resolve_spec(str(payload.get("spec")), spec)
        if payload.get("spec") != spec_obj.name:
            raise _Reject(
                "spec-mismatch",
                f"certificate is for spec {payload.get('spec')!r}, "
                f"checking against {spec_obj.name!r}",
            )
        if spec_obj.name not in self._spec_hashes:
            self._spec_hashes[spec_obj.name] = model.spec_hash(spec_obj)
        if payload.get("spec_hash") != self._spec_hashes[spec_obj.name]:
            raise _Reject(
                "spec-hash-mismatch",
                "specification hash disagrees with the checker's spec",
            )

        source = payload.get("source")
        if not isinstance(source, str):
            raise _Reject("malformed", "certificate carries no client source")
        if payload.get("source_hash") != model.sha256_text(source):
            raise _Reject(
                "source-hash-mismatch",
                "embedded source does not match its recorded hash",
            )

        opts = payload.get("options")
        if not isinstance(opts, dict):
            raise _Reject("malformed", "certificate carries no options")
        if payload.get("fingerprint") != model.options_fingerprint(
            engine, opts
        ):
            raise _Reject(
                "fingerprint-mismatch",
                "engine/options fingerprint disagrees with recorded options",
            )

        verdict = payload.get("verdict")
        if not isinstance(verdict, dict):
            raise _Reject("malformed", "certificate carries no verdict")
        if verdict.get("partial"):
            raise _Reject(
                "partial",
                "partial (salvaged) certificate carries no fixpoint "
                "annotation and cannot be independently verified",
            )
        annotation = payload.get("annotation")
        if not isinstance(annotation, dict):
            raise _Reject("malformed", "certificate carries no annotation")

        session = self._session(spec_obj, opts)
        build_key = (
            spec_obj.name,
            model.canonical_text(opts),
            str(engine),
            str(payload.get("source_hash")),
        )
        build = self._builds.get(build_key)
        if build is None:
            try:
                from repro.lang.types import parse_program

                program = parse_program(source, spec_obj)
                arts = session.artifacts(program, engine, source_key=source)
            except _Reject:
                raise
            except Exception as error:  # parse/transform failure on the
                # embedded source: the certificate cannot describe this
                # client
                raise _Reject(
                    "malformed",
                    f"embedded source does not build for {engine}: {error}",
                )
            build = (
                program,
                arts,
                model.abstraction_hash(arts.get("abstraction")),
            )
            self._builds[build_key] = build
        program, arts, derived_hash = build

        recorded_hash = payload.get("abstraction_hash")
        if recorded_hash != derived_hash:
            raise _Reject(
                "abstraction-hash-mismatch",
                "derived-abstraction hash disagrees with this derivation",
            )

        if engine == "fds":
            alarms, nodes, edges = self._check_fds(session, arts, annotation)
        elif engine == "relational":
            alarms, nodes, edges = self._check_relational(
                session, arts, annotation
            )
        elif engine == "interproc":
            alarms, nodes, edges = self._check_interproc(
                session, program, arts, annotation, build_key
            )
        elif engine.startswith("tvla-"):
            alarms, nodes, edges = self._check_tvla(arts, annotation)
        else:
            alarms, nodes, edges = self._check_generic(
                spec_obj, arts, annotation
            )

        recorded = verdict.get("alarms")
        computed = model.alarms_to_json(alarms)
        if recorded != computed:
            raise _Reject(
                "alarm-mismatch",
                f"annotation entails {len(computed)} alarm(s), "
                f"certificate claims {len(recorded or [])}",
            )
        if bool(verdict.get("certified")) != (not computed):
            raise _Reject(
                "alarm-mismatch", "certified flag contradicts the alarm list"
            )
        return CheckResult(
            ok=True,
            kind="accepted",
            engine=engine,
            subject=subject,
            nodes=nodes,
            edges=edges,
        )

    # -- family passes ------------------------------------------------------

    def _decode_boolprog_masks(self, boolprog, annotation):
        if annotation.get("num_vars") != boolprog.num_vars:
            raise _Reject(
                "malformed",
                f"annotation has {annotation.get('num_vars')} variables, "
                f"transformation produced {boolprog.num_vars}",
            )
        masks = model.decode_masks(annotation["nodes"])
        limit = 1 << boolprog.num_vars
        valid = set(boolprog.nodes())
        for node, (one, zero) in masks.items():
            if node not in valid:
                raise _Reject("malformed", f"annotation names unknown node {node}")
            if one >= limit or zero >= limit:
                raise _Reject(
                    "malformed", f"mask bits beyond num_vars at node {node}"
                )
        return masks

    def _check_fds(self, session, arts, annotation):
        boolprog = arts["boolprog"]
        if annotation.get("kind") != "fds":
            raise _Reject("malformed", "annotation kind is not 'fds'")
        masks = self._decode_boolprog_masks(boolprog, annotation)
        may_one = {node: pair[0] for node, pair in masks.items()}
        may_zero = {node: pair[1] for node, pair in masks.items()}
        all_vars = (1 << boolprog.num_vars) - 1
        init_one = boolprog.initial_mask()
        init_zero = all_vars & ~init_one
        if init_one & ~may_one.get(boolprog.entry, 0) or init_zero & ~may_zero.get(
            boolprog.entry, 0
        ):
            raise _Reject(
                "entry", "entry annotation does not cover the initial valuation"
            )
        solver = FdsSolver(prune_requires=session.options.prune_requires)
        checked = 0
        for edge in boolprog.edges:
            if edge.src not in masks:
                continue  # claimed unreachable; closure makes this sound
            transferred = solver._transfer(
                edge, may_one[edge.src], may_zero[edge.src]
            )
            checked += 1
            if transferred is None:
                continue  # the edge definitely throws: no flow to subsume
            new_one, new_zero = transferred
            if new_one & ~may_one.get(edge.dst, 0) or new_zero & ~may_zero.get(
                edge.dst, 0
            ):
                raise _Reject(
                    "not-inductive",
                    f"transfer along edge {edge.src}->{edge.dst} is not "
                    "subsumed by the successor annotation",
                    edge=(edge.src, edge.dst),
                )
        alarms = solver._collect_alarms(boolprog, may_one, may_zero, None)
        return alarms, len(masks), checked

    def _check_relational(self, session, arts, annotation):
        boolprog = arts["boolprog"]
        if annotation.get("kind") != "relational":
            raise _Reject("malformed", "annotation kind is not 'relational'")
        if annotation.get("num_vars") != boolprog.num_vars:
            raise _Reject("malformed", "variable count mismatch")
        states = model.decode_int_sets(annotation["nodes"])
        limit = 1 << boolprog.num_vars
        valid = set(boolprog.nodes())
        for node, values in states.items():
            if node not in valid:
                raise _Reject("malformed", f"annotation names unknown node {node}")
            if any(v < 0 or v >= limit for v in values):
                raise _Reject(
                    "malformed", f"valuation beyond num_vars at node {node}"
                )
        if boolprog.initial_mask() not in states.get(boolprog.entry, frozenset()):
            raise _Reject(
                "entry", "entry annotation does not contain the initial valuation"
            )
        solver = RelationalSolver(
            prune_requires=session.options.prune_requires
        )
        alarm_hits: Dict[Tuple[int, int], List[bool]] = {}
        checked = 0
        for edge in boolprog.edges:
            if edge.src not in states:
                continue
            outgoing = solver._transfer(edge, states[edge.src], alarm_hits)
            checked += 1
            extra = outgoing - states.get(edge.dst, frozenset())
            if extra:
                raise _Reject(
                    "not-inductive",
                    f"{len(extra)} valuation(s) along edge "
                    f"{edge.src}->{edge.dst} escape the successor annotation",
                    edge=(edge.src, edge.dst),
                )
        alarms = solver._collect_alarms(boolprog, alarm_hits)
        return alarms, len(states), checked

    def _check_interproc(self, session, program, arts, annotation, build_key):
        if annotation.get("kind") != "interproc":
            raise _Reject("malformed", "annotation kind is not 'interproc'")
        certifier = self._certifiers.get(build_key)
        if certifier is None:
            certifier = InterproceduralCertifier(
                program,
                arts["abstraction"],
                prune_requires=session.options.prune_requires,
                worklist=session.options.worklist,
            )
            self._certifiers[build_key] = certifier
        try:
            contexts: Dict[Tuple[str, int], dict] = {}
            for ctx in annotation["contexts"]:
                key = (str(ctx["method"]), int(ctx["entry"], 16))
                contexts[key] = {
                    "masks": model.decode_masks(ctx["nodes"]),
                    "summary": int(ctx["summary"], 16),
                    "num_vars": ctx["num_vars"],
                }
        except (KeyError, TypeError, ValueError) as error:
            raise _Reject("malformed", f"bad interproc context: {error}")
        entry_name = session.options.entry
        entry_method = (
            certifier.program.method(entry_name)
            if entry_name
            else certifier.program.entry
        )
        entry_space = certifier.space(entry_method.qualified)
        root = (entry_method.qualified, entry_space.default_mask)
        if root not in contexts:
            raise _Reject(
                "entry",
                f"root context {entry_method.qualified} with the initial "
                "vector is not annotated",
            )
        alarms: Dict[Tuple[int, str], object] = {}
        total_nodes = 0
        checked = 0
        for (method, entry_vector), data in sorted(contexts.items()):
            try:
                space = certifier.space(method)
            except Exception as error:
                raise _Reject(
                    "malformed", f"unknown context method {method!r}: {error}"
                )
            boolprog = space.boolprog
            all_vars = (1 << boolprog.num_vars) - 1
            if data["num_vars"] != boolprog.num_vars:
                raise _Reject(
                    "malformed", f"variable count mismatch in {method}"
                )
            masks = data["masks"]
            valid = set(boolprog.nodes())
            for node, (one, zero) in masks.items():
                if node not in valid or one > all_vars or zero > all_vars:
                    raise _Reject(
                        "malformed", f"bad node annotation {node} in {method}"
                    )
            total_nodes += len(masks)
            states = {node: pair[0] for node, pair in masks.items()}
            zeros = {node: pair[1] for node, pair in masks.items()}
            if entry_vector & ~states.get(boolprog.entry, 0):
                raise _Reject(
                    "entry",
                    f"context {method} entry annotation does not cover its "
                    "entry vector",
                )
            init_zero = (
                all_vars & ~entry_vector
                if (method, entry_vector) == root
                else all_vars
            )
            if init_zero & ~zeros.get(boolprog.entry, 0):
                raise _Reject(
                    "entry",
                    f"context {method} entry annotation drops may-0 bits",
                )
            calls = {(src, dst): stm for src, dst, stm in space.call_edges}
            for edge in boolprog.edges:
                if edge.src not in masks:
                    continue
                mask = states[edge.src]
                zmask = zeros[edge.src]
                stm = calls.get((edge.src, edge.dst))
                if stm is not None:
                    vector, callee_space = certifier.call_entry_vector(
                        space, mask, stm
                    )
                    callee_key = (stm.callee, vector)
                    callee = contexts.get(callee_key)
                    if callee is None:
                        raise _Reject(
                            "coverage",
                            f"callee context {stm.callee} (from {method}) "
                            "is not annotated",
                            edge=(method, edge.src, edge.dst),
                        )
                    out = certifier.map_return(
                        space, mask, stm, callee_space, callee["summary"]
                    )
                    zout = all_vars
                else:
                    transferred = certifier.edge_transfer(
                        boolprog, method, edge, mask, zmask, alarms
                    )
                    if transferred is None:
                        checked += 1
                        continue
                    out, zout = transferred
                checked += 1
                if out & ~states.get(edge.dst, 0) or zout & ~zeros.get(
                    edge.dst, 0
                ):
                    raise _Reject(
                        "not-inductive",
                        f"{method}: transfer along edge "
                        f"{edge.src}->{edge.dst} is not subsumed",
                        edge=(method, edge.src, edge.dst),
                    )
            exit_mask = states.get(boolprog.exit, 0)
            if exit_mask & ~data["summary"]:
                raise _Reject(
                    "not-inductive",
                    f"{method}: summary does not cover the exit annotation",
                    edge=(method, boolprog.exit),
                )
        alarm_list = sorted(
            alarms.values(), key=lambda a: (a.site_id, a.instance)
        )
        return alarm_list, total_nodes, checked

    def _check_tvla(self, arts, annotation):
        engine_obj = arts["engine_obj"]
        tvp = arts["tvp"]
        if annotation.get("kind") != "tvla" or annotation.get("mode") != arts[
            "mode"
        ]:
            raise _Reject("malformed", "annotation kind/mode mismatch")
        preds = engine_obj.abstraction_preds
        # the checker recomputes canonical keys itself from the decoded
        # pool (canonicalizing defensively): internal consistency, never
        # trust recorded keys
        pool = [
            model.structure_from_json(entry)
            for entry in annotation.get("pool", [])
        ]
        if engine_obj.packed:
            # re-encode into the packed representation so replayed
            # transfers and key comparisons run on the same kernel the
            # engine uses; keys from mixed representations never meet
            pool = [
                packed_kernel.PackedStructure.from_dense(structure)
                for structure in pool
            ]
        pool = [structure.canonicalize(preds) for structure in pool]
        keys = [structure.canonical_key(preds) for structure in pool]
        valid_nodes = set(tvp.nodes())
        alarms: Dict[Tuple[int, str], object] = {}
        initial = engine_obj.initial_structure().canonicalize(preds)
        checked = 0
        if arts["mode"] == "relational":
            id_sets = model.decode_int_sets(annotation["nodes"])
            for node, ids in id_sets.items():
                if node not in valid_nodes or any(
                    i < 0 or i >= len(pool) for i in ids
                ):
                    raise _Reject(
                        "malformed", f"bad structure ids at node {node}"
                    )
            node_keys = {
                node: {keys[i] for i in ids}
                for node, ids in id_sets.items()
            }
            if initial.canonical_key(preds) not in node_keys.get(
                tvp.entry, set()
            ):
                raise _Reject(
                    "entry",
                    "entry annotation does not contain the initial structure",
                )
            for node in sorted(id_sets):
                for edge in tvp.out_edges(node):
                    dst_keys = node_keys.get(edge.dst, set())
                    for i in sorted(id_sets[node]):
                        outs = engine_obj.apply(pool[i], edge.action, alarms)
                        checked += 1
                        for out in outs:
                            if out.canonical_key(preds) not in dst_keys:
                                raise _Reject(
                                    "not-inductive",
                                    f"a structure transferred along edge "
                                    f"{node}->{edge.dst} is not in the "
                                    "successor annotation",
                                    edge=(node, edge.dst),
                                )
            count = len(id_sets)
        else:
            try:
                singles = {
                    int(node): pool[i] for node, i in annotation["nodes"]
                }
                single_keys = {
                    int(node): keys[i] for node, i in annotation["nodes"]
                }
            except (TypeError, ValueError, IndexError) as error:
                raise _Reject("malformed", f"bad node annotation: {error}")
            if any(node not in valid_nodes for node in singles):
                raise _Reject("malformed", "annotation names unknown node")
            entry_structure = singles.get(tvp.entry)
            if entry_structure is None:
                raise _Reject("entry", "entry node is not annotated")
            joined = type(entry_structure).join(
                entry_structure, initial, preds
            ).canonicalize(preds)
            if joined.canonical_key(preds) != single_keys[tvp.entry]:
                raise _Reject(
                    "entry",
                    "entry annotation does not subsume the initial structure",
                )
            for node in sorted(singles):
                structure = singles[node]
                for edge in tvp.out_edges(node):
                    outs = engine_obj.apply(structure, edge.action, alarms)
                    checked += 1
                    for out in outs:
                        old = singles.get(edge.dst)
                        if old is None:
                            raise _Reject(
                                "coverage",
                                f"node {edge.dst} is reachable but not "
                                "annotated",
                                edge=(node, edge.dst),
                            )
                        merged = type(old).join(
                            old, out, preds
                        ).canonicalize(preds)
                        if merged.canonical_key(preds) != single_keys[edge.dst]:
                            raise _Reject(
                                "not-inductive",
                                f"transfer along edge {node}->{edge.dst} "
                                "is not subsumed by the successor annotation",
                                edge=(node, edge.dst),
                            )
            count = len(singles)
        return _alarm_list(alarms), count, checked

    def _check_generic(self, spec, arts, annotation):
        domain = arts["domain"]
        cfg = arts["inlined"].cfg
        if annotation.get("kind") != "generic":
            raise _Reject("malformed", "annotation kind is not 'generic'")
        pool_payload = annotation.get("pool", [])
        try:
            pool = [domain.state_from_json(entry) for entry in pool_payload]
            states = {
                int(node): pool[i] for node, i in annotation["nodes"]
            }
        except _Reject:
            raise
        except Exception as error:
            raise _Reject("malformed", f"bad heap-state annotation: {error}")
        valid = {cfg.entry}
        for edge in cfg.edges:
            valid.add(edge.src)
            valid.add(edge.dst)
        if any(node not in valid for node in states):
            raise _Reject("malformed", "annotation names unknown node")
        entry_state = states.get(cfg.entry)
        if entry_state is None:
            raise _Reject("entry", "entry node is not annotated")
        if domain.join(entry_state, domain.initial()) != entry_state:
            raise _Reject(
                "entry", "entry annotation does not subsume the initial state"
            )
        runner = _SpecRunner(spec, domain)
        checked = 0
        # one application per edge serves both purposes: the successor
        # states prove inductiveness, and the checks sink replays the
        # requires clauses (what _collect_alarms would recompute in a
        # second sweep over the same states)
        checks = []
        for node in sorted(states):
            state = states[node]
            for edge in cfg.out_edges(node):
                successors = generic_transfer(
                    edge.stm, state, domain, runner, checks
                )
                checked += 1
                for successor in successors:
                    old = states.get(edge.dst)
                    if old is None:
                        raise _Reject(
                            "coverage",
                            f"node {edge.dst} is reachable but not annotated",
                            edge=(node, edge.dst),
                        )
                    if domain.join(old, successor) != old:
                        raise _Reject(
                            "not-inductive",
                            f"transfer along edge {node}->{edge.dst} is not "
                            "subsumed by the successor annotation",
                            edge=(node, edge.dst),
                        )
        alarms = []
        seen = set()
        for site_id, line, op_key, ok in checks:
            if ok or site_id in seen:
                continue
            seen.add(site_id)
            alarms.append(
                Alarm(
                    site_id=site_id,
                    line=line,
                    op_key=op_key,
                    instance="<heap must-alias check>",
                )
            )
        alarms.sort(key=lambda a: a.site_id)
        return alarms, len(states), checked
