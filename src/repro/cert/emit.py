"""Certificate emission: turn a completed fixpoint into an annotation.

Each engine family records its post-fixpoint per-node abstract states:

========================  ====================================================
family                    annotation payload
========================  ====================================================
fds                       per-node (may-1, may-0) bitmasks, XOR-delta coded
relational                per-node valuation sets, add/drop-delta coded
interproc                 per-(method, entry-vector) context: node masks +
                          the summary table
tvla                      hash-consed pool of canonical three-valued
                          structures; per-node id sets (relational mode) or
                          a single id (independent mode)
generic                   hash-consed pool of serialized heap states;
                          one id per node
========================  ====================================================

Everything is keyed canonically and serialized deterministically so two
emission runs produce byte-identical certificates.
"""

from __future__ import annotations

from typing import Dict, List

from repro.cert import model
from repro.cert.model import ConformanceCertificate, Pool


def options_payload(options) -> Dict[str, object]:
    """The semantically relevant option fields recorded (and
    fingerprinted) in a certificate.  The checker rebuilds its session
    from exactly these."""
    return {
        "entry": options.entry,
        "prune_requires": options.prune_requires,
        "inline_depth": options.inline_depth,
        "worklist": options.worklist,
    }


def _stats_payload(stats: Dict[str, object]) -> Dict[str, object]:
    return {
        key: stats[key] for key in model.DETERMINISTIC_STATS if key in stats
    }


def _edge_preds(edges) -> Dict[int, List[int]]:
    preds: Dict[int, List[int]] = {}
    for edge in edges:
        preds.setdefault(edge.dst, []).append(edge.src)
    return preds


# -- per-family annotation builders -----------------------------------------


def _fds_annotation(arts, result) -> Dict[str, object]:
    boolprog = arts["boolprog"]
    preds = _edge_preds(boolprog.edges)
    masks = {
        node: (one, result.may_zero.get(node, 0))
        for node, one in result.may_one.items()
    }
    return {
        "kind": "fds",
        "num_vars": boolprog.num_vars,
        "nodes": model.encode_masks(masks, preds),
    }


def _relational_annotation(arts, result) -> Dict[str, object]:
    boolprog = arts["boolprog"]
    preds = _edge_preds(boolprog.edges)
    return {
        "kind": "relational",
        "num_vars": boolprog.num_vars,
        "nodes": model.encode_int_sets(result.states, preds),
    }


def _interproc_annotation(capture) -> Dict[str, object]:
    certifier = capture["certifier"]
    fixpoint = certifier.fixpoint
    contexts = []
    for key in sorted(fixpoint["memo"]):
        method, entry_vector = key
        boolprog = certifier.space(method).boolprog
        preds = _edge_preds(boolprog.edges)
        states = fixpoint["node_states"].get(key, {})
        zeros = fixpoint["node_zeros"].get(key, {})
        masks = {
            node: (states.get(node, 0), zeros.get(node, 0))
            for node in set(states) | set(zeros)
        }
        contexts.append(
            {
                "method": method,
                "entry": format(entry_vector, "x"),
                "num_vars": boolprog.num_vars,
                "nodes": model.encode_masks(masks, preds),
                "summary": format(fixpoint["memo"][key], "x"),
            }
        )
    root_method, root_vector = fixpoint["root"]
    return {
        "kind": "interproc",
        "entry_method": fixpoint["entry"],
        "root": [root_method, format(root_vector, "x")],
        "contexts": contexts,
    }


def _tvla_annotation(arts, result) -> Dict[str, object]:
    engine_obj = arts["engine_obj"]
    tvp = arts["tvp"]
    preds = engine_obj.abstraction_preds
    cfg_preds = _edge_preds(tvp.edges)
    pool = Pool()
    if arts["mode"] == "relational":
        raw_sets: Dict[int, set] = {}
        for node, bucket in result.node_states.items():
            raw_sets[node] = {
                pool.add(model.structure_to_json(structure, preds))
                for structure in bucket.values()
            }
        entries, remap = pool.finish()
        id_sets = {
            node: frozenset(remap[i] for i in ids)
            for node, ids in raw_sets.items()
        }
        return {
            "kind": "tvla",
            "mode": "relational",
            "pool": entries,
            "nodes": model.encode_int_sets(id_sets, cfg_preds),
        }
    raw_ids = {
        node: pool.add(model.structure_to_json(structure, preds))
        for node, structure in result.node_single.items()
    }
    entries, remap = pool.finish()
    return {
        "kind": "tvla",
        "mode": "independent",
        "pool": entries,
        "nodes": sorted([node, remap[i]] for node, i in raw_ids.items()),
    }


def _generic_annotation(engine: str, arts, result) -> Dict[str, object]:
    domain = arts["domain"]
    pool = Pool()
    raw_ids = {
        node: pool.add(domain.state_to_json(state))
        for node, state in result.node_states.items()
    }
    entries, remap = pool.finish()
    return {
        "kind": "generic",
        "domain": engine,
        "pool": entries,
        "nodes": sorted([node, remap[i]] for node, i in raw_ids.items()),
    }


def build_annotation(engine: str, arts, capture) -> Dict[str, object]:
    if engine == "fds":
        return _fds_annotation(arts, capture["result"])
    if engine == "relational":
        return _relational_annotation(arts, capture["result"])
    if engine == "interproc":
        return _interproc_annotation(capture)
    if engine.startswith("tvla-"):
        return _tvla_annotation(arts, capture["result"])
    return _generic_annotation(engine, arts, capture["result"])


# -- whole-certificate assembly ---------------------------------------------


def _base_payload(
    *, spec, engine: str, options, abstraction, source: str, report
) -> Dict[str, object]:
    opts = options_payload(options)
    return {
        "format": model.CERT_FORMAT,
        "version": model.CERT_VERSION,
        "spec": spec.name,
        "spec_hash": model.spec_hash(spec),
        "abstraction_hash": model.abstraction_hash(abstraction),
        "engine": engine,
        "options": opts,
        "fingerprint": model.options_fingerprint(engine, opts),
        "subject": report.subject,
        "source": source,
        "source_hash": model.sha256_text(source),
        "stats": _stats_payload(report.stats),
    }


def build_certificate(
    *, spec, engine, options, abstraction, source, report, arts, capture
) -> ConformanceCertificate:
    payload = _base_payload(
        spec=spec,
        engine=engine,
        options=options,
        abstraction=abstraction,
        source=source,
        report=report,
    )
    payload["verdict"] = {
        "certified": report.certified,
        "partial": False,
        "alarms": model.alarms_to_json(report.alarms),
        "salvage": None,
    }
    payload["annotation"] = build_annotation(engine, arts, capture)
    return ConformanceCertificate(payload)


def build_partial_certificate(
    *, spec, engine, options, source, report
) -> ConformanceCertificate:
    """A breached-and-salvaged run: no fixpoint annotation exists, so the
    certificate records the salvage metadata and ``annotation: null``.
    The checker rejects it as unverifiable (kind ``"partial"``)."""
    stats = report.stats
    payload = _base_payload(
        spec=spec,
        engine=engine,
        options=options,
        abstraction=None,
        source=source,
        report=report,
    )
    payload["verdict"] = {
        "certified": report.certified,
        "partial": True,
        "alarms": model.alarms_to_json(report.alarms),
        "salvage": {
            "breach": stats.get("breach"),
            "ladder": stats.get("ladder"),
            "degraded_to": stats.get("degraded_to"),
            "completed_rung": stats.get("completed_rung"),
            "salvaged": stats.get("salvaged"),
            "sites_resolved": stats.get("sites_resolved"),
            "sites_unresolved": stats.get("sites_unresolved"),
        },
    }
    payload["annotation"] = None
    return ConformanceCertificate(payload)
