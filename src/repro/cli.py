"""Command-line interface: ``repro-certify``.

Examples::

    repro-certify client.jl                      # CMP, auto engine
    repro-certify client.jl --engine fds
    repro-certify client.jl --spec grp --engine interproc
    repro-certify --show-abstraction --spec cmp  # print Figs. 4+5
    repro-certify client.jl --ground-truth       # compare vs interpreter
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.api import ENGINES, certify_source, derive_abstraction
from repro.easl.library import ALL_SPECS
from repro.lang.types import parse_program
from repro.runtime import explore


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-certify",
        description=(
            "Statically certify a Jlite client against a component "
            "conformance specification (PLDI 2002 staged certification)."
        ),
    )
    parser.add_argument(
        "client", nargs="?", help="path to the Jlite client source"
    )
    parser.add_argument(
        "--spec",
        default="cmp",
        choices=sorted(name.lower() for name in ALL_SPECS),
        help="which shipped specification to certify against",
    )
    parser.add_argument(
        "--engine", default="auto", choices=ENGINES, help="analysis engine"
    )
    parser.add_argument(
        "--show-abstraction",
        action="store_true",
        help="print the derived instrumentation predicates and method "
        "abstractions (the paper's Figs. 4 and 5) and exit",
    )
    parser.add_argument(
        "--ground-truth",
        action="store_true",
        help="also run the exhaustive interpreter and report false alarms",
    )
    parser.add_argument(
        "--no-prune",
        action="store_true",
        help="do not assume a passing requires afterwards (A2 ablation)",
    )
    return parser


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    spec = ALL_SPECS[args.spec.upper()]()

    if args.show_abstraction:
        abstraction = derive_abstraction(spec)
        print(abstraction.describe())
        stats = abstraction.stats
        print(
            f"\n{stats.families} families, {stats.wp_calls} WP calls, "
            f"{stats.equivalence_checks} equivalence checks, "
            f"{stats.elapsed_seconds:.2f}s"
        )
        return 0

    if not args.client:
        print("error: no client source given", file=sys.stderr)
        return 2

    with open(args.client) as handle:
        source = handle.read()

    report = certify_source(
        source, spec, args.engine, prune_requires=not args.no_prune
    )
    print(report.describe())

    if args.ground_truth:
        program = parse_program(source, spec)
        truth = explore(program)
        summary = truth.compare(report.alarm_sites())
        print(
            f"ground truth: {summary.real_errors} real error site(s); "
            f"{summary.false_alarms} false alarm(s); "
            f"{summary.missed_errors} missed"
            + (" [exploration truncated]" if truth.truncated else "")
        )

    return 0 if report.certified else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
