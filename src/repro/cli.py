"""Command-line interface: ``repro`` / ``repro-certify``.

Single-client certification (the legacy surface)::

    repro-certify client.jl                      # CMP, auto engine
    repro-certify client.jl --engine fds
    repro-certify client.jl --spec grp --engine interproc
    repro-certify --show-abstraction --spec cmp  # print Figs. 4+5
    repro-certify client.jl --ground-truth       # compare vs interpreter

Batch certification on a process pool (see :mod:`repro.runtime.batch`)::

    repro batch manifest.json --jobs 4 --timeout 30 --trace out.jsonl
    repro batch manifest.json --jobs 4 --fallback fds --json summary.json
    repro batch manifest.json --checkpoint-dir ckpt   # journal progress
    repro batch manifest.json --checkpoint-dir ckpt --resume

Suite benchmarks (see :mod:`repro.bench.harness`)::

    repro bench --json table.json                # precision table
    repro bench --compare --json BENCH_pr2.json  # interpreted vs compiled
    repro bench --compare --check --min-speedup 2.0

Differential fuzzing with the soundness gate (see :mod:`repro.fuzz`)::

    repro fuzz --seed-range 0:200                # all engine families
    repro fuzz --seed-range 0:25 --engines fds,tvla-relational
    repro fuzz --seed-range 0:5000 --time-budget 1200 --json out.json
    repro fuzz --seed-range 0:200 --shrink --corpus tests/corpus

Proof-carrying certificates (see :mod:`repro.cert`)::

    repro certify client.jl --emit-cert client.cert.json
    repro certify --all-suite --emit-cert-dir certs/   # one per program x engine
    repro check certs/*.cert.json --json report.json   # no fixpoint re-run

The certification service (see :mod:`repro.serve`)::

    repro serve --port 8091 --specs cmp,grp --workers 4 --store certs.cas
    repro serve --tenants tenants.json --max-steps 200000 --prewarm
    repro bench serve --check --json BENCH_serve.json  # load generator

Fault-injection campaign (see :mod:`repro.testing.chaos`)::

    repro chaos --schedules 100 --seed 0 --json chaos.json
    repro chaos --schedules 20 --layers store --quiet
"""

from __future__ import annotations

import argparse
import json
import os
import sys
from typing import List, Optional

from repro.api import (
    ENGINES,
    CertifyOptions,
    CertifySession,
)
from repro.easl.library import available_specs, get_spec
from repro.lang.types import parse_program
from repro.runtime import explore


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-certify",
        description=(
            "Statically certify a Jlite client against a component "
            "conformance specification (PLDI 2002 staged certification)."
        ),
    )
    parser.add_argument(
        "client", nargs="?", help="path to the Jlite client source"
    )
    parser.add_argument(
        "--spec",
        default="cmp",
        choices=available_specs(),
        help="which shipped specification to certify against",
    )
    parser.add_argument(
        "--engine", default="auto", choices=ENGINES, help="analysis engine"
    )
    parser.add_argument(
        "--show-abstraction",
        action="store_true",
        help="print the derived instrumentation predicates and method "
        "abstractions (the paper's Figs. 4 and 5) and exit",
    )
    parser.add_argument(
        "--ground-truth",
        action="store_true",
        help="also run the exhaustive interpreter and report false alarms",
    )
    parser.add_argument(
        "--no-prune",
        action="store_true",
        help="do not assume a passing requires afterwards (A2 ablation)",
    )
    return parser


def build_batch_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro batch",
        description=(
            "Run a manifest of (client, spec, engine) certification jobs "
            "on a process pool with per-job timeouts, engine fallback and "
            "per-phase JSONL tracing."
        ),
    )
    parser.add_argument(
        "manifest",
        nargs="?",
        default=None,
        help="path to the JSON job manifest (not needed with "
        "--shard-index or --merge-shards)",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        metavar="N",
        help="worker processes (1 = run in-process, no pool)",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="default per-job wall-clock budget for jobs without one",
    )
    parser.add_argument(
        "--fallback",
        default=None,
        choices=ENGINES,
        help="default fallback engine for jobs without one",
    )
    parser.add_argument(
        "--retries",
        type=int,
        default=2,
        metavar="N",
        help="retries per job after transient worker death",
    )
    parser.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="write per-phase trace events as JSONL",
    )
    parser.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        help="write the aggregated batch summary as JSON ('-' for stdout)",
    )
    parser.add_argument(
        "--emit-certs",
        default=None,
        metavar="DIR",
        help="emit a proof-carrying certificate per job into DIR "
        "(<job>.cert.json; path recorded in the job's JSON record)",
    )
    parser.add_argument(
        "--checkpoint-dir",
        default=None,
        metavar="DIR",
        help="journal every finished job (fsynced JSONL) under DIR so a "
        "killed run can be resumed",
    )
    parser.add_argument(
        "--run-id",
        default=None,
        metavar="ID",
        help="checkpoint journal name (default: a hash of the "
        "manifest's job identities, so the same manifest resumes "
        "its own journal)",
    )
    parser.add_argument(
        "--resume",
        action="store_true",
        help="restore journaled results instead of re-certifying; "
        "emitted certificates are re-verified by SHA-256 first "
        "(requires --checkpoint-dir)",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress the summary table"
    )
    group = parser.add_argument_group(
        "work-stealing shards",
        "split the manifest into per-shard work queues served by the "
        "pool (workers steal from the longest remaining queue), or "
        "hand shards to other hosts via a shared --shard-dir",
    )
    group.add_argument(
        "--shards",
        type=int,
        default=None,
        metavar="N",
        help="run the manifest through the work-stealing coordinator "
        "with N shards (default shards = --jobs when any shard flag "
        "is given)",
    )
    group.add_argument(
        "--shard-dir",
        default=None,
        metavar="DIR",
        help="shared directory holding the shard plan, per-shard "
        "manifests, certificate dirs and checkpoint journals",
    )
    group.add_argument(
        "--write-shards",
        action="store_true",
        help="only write the shard plan into --shard-dir and exit "
        "(for multi-host handoff via --shard-index)",
    )
    group.add_argument(
        "--shard-index",
        type=int,
        default=None,
        metavar="K",
        help="run shard K of the plan in --shard-dir on this host",
    )
    group.add_argument(
        "--merge-shards",
        action="store_true",
        help="merge completed per-shard certificates from --shard-dir "
        "(each re-verified by SHA-256 against its journal) and exit",
    )
    _add_governor_arguments(parser)
    return parser


def _add_governor_arguments(
    parser: argparse.ArgumentParser, steps_flag: str = "--max-steps"
) -> None:
    """Resource-governor knobs shared by batch / bench / fuzz."""
    group = parser.add_argument_group(
        "resource governor",
        "in-engine budgets; breached runs surrender a sound partial "
        "result instead of dying (see repro.runtime.guard)",
    )
    group.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="cooperative wall-clock deadline per certification",
    )
    group.add_argument(
        steps_flag,
        dest="governor_steps",
        type=int,
        default=None,
        metavar="N",
        help="fixpoint step budget per certification",
    )
    group.add_argument(
        "--max-structures",
        type=int,
        default=None,
        metavar="N",
        help="abstract-structure budget per certification",
    )
    group.add_argument(
        "--ladder",
        action="store_true",
        help="on breach, re-run the unresolved residue at cheaper "
        "engine tiers (the default degradation ladder)",
    )


def _governor_options(args: argparse.Namespace):
    """A CertifyOptions carrying the governor flags, or None if unset."""
    if (
        args.deadline is None
        and args.governor_steps is None
        and args.max_structures is None
        and not args.ladder
    ):
        return None
    return CertifyOptions(
        deadline=args.deadline,
        max_steps=args.governor_steps,
        max_structures=args.max_structures,
        ladder=True if args.ladder else None,
    )


def build_bench_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro bench",
        description=(
            "Run the suite benchmark: the precision table (default) or "
            "the interpreted-vs-compiled comparison (--compare), with "
            "machine-readable --json output and CI gating (--check)."
        ),
    )
    parser.add_argument(
        "--spec",
        default="cmp",
        choices=available_specs(),
        help="which shipped specification to benchmark against",
    )
    parser.add_argument(
        "--engines",
        default=None,
        metavar="E1,E2,...",
        help="comma-separated engine subset for the precision table",
    )
    parser.add_argument(
        "--compare",
        action="store_true",
        help="run the optimized-vs-interpreted comparison (both paths "
        "in the same run) instead of the precision table",
    )
    parser.add_argument(
        "--packed-compare",
        action="store_true",
        help="run the packed-kernel-vs-dict comparison (cold / "
        "fresh-engine steady / warm-replay protocols, kernel-op "
        "microbenchmarks, checker replay, multiprocess batch scaling) "
        "on the loop-heavy synthetic clients",
    )
    parser.add_argument(
        "--sizes",
        default=None,
        metavar="S:F:L:R,...",
        help="comma-separated heap-client sizes for --packed-compare "
        "(sets:fields:loops:reads; default 3:3:2:3,4:4:2:4,4:4:3:4)",
    )
    parser.add_argument(
        "--batch-workers",
        default="1,4",
        metavar="N1,N2",
        help="worker counts for the --packed-compare batch-scaling row",
    )
    parser.add_argument(
        "--incremental",
        action="store_true",
        help="run the incremental-recertification bench: byte-diff "
        "warm-started vs from-scratch certificates over fuzzed edit "
        "chains, and time the speedup-vs-edit-distance curve on a "
        "loop-heavy heap client",
    )
    parser.add_argument(
        "--seeds",
        type=int,
        default=8,
        metavar="N",
        help="fuzzed base clients for the --incremental equality corpus",
    )
    parser.add_argument(
        "--edits",
        type=int,
        default=5,
        metavar="N",
        help="edit-chain length per base client for --incremental",
    )
    parser.add_argument(
        "--edit-seed",
        type=int,
        default=0,
        metavar="S",
        help="base seed for the --incremental edit chains",
    )
    parser.add_argument(
        "--distances",
        default="1,2,4,8",
        metavar="D1,D2,...",
        help="edit distances for the --incremental speedup curve",
    )
    parser.add_argument(
        "--scale",
        action="store_true",
        help="run the scale harness: certify/check wall time and peak "
        "RSS vs program size over the synthetic scale families, plus "
        "the cold-vs-warm summary-DB protocol on shared-library",
    )
    parser.add_argument(
        "--scale-sizes",
        default=None,
        metavar="N1,N2,...",
        help="target statement counts for --scale (default: "
        "1000,2000,4000)",
    )
    parser.add_argument(
        "--families",
        default=None,
        metavar="F1,F2,...",
        help="scale families for --scale (default: all; see "
        "repro.bench.synthetic.SCALE_FAMILIES)",
    )
    parser.add_argument(
        "--scale-engines",
        default=None,
        metavar="E1,E2,...",
        help="engines for --scale (default: interproc)",
    )
    parser.add_argument(
        "--scale-seed",
        type=int,
        default=1,
        metavar="S",
        help="generator seed for --scale",
    )
    parser.add_argument(
        "--superlinear-factor",
        type=float,
        default=3.0,
        metavar="X",
        help="with --scale and --check, fail when certify time grows "
        "more than X times faster than program size between adjacent "
        "sizes",
    )
    parser.add_argument(
        "--warm-cold-target",
        type=int,
        default=None,
        metavar="N",
        help="statement count for the --scale cold-vs-warm summary-DB "
        "protocol (default: the largest --scale-sizes entry)",
    )
    parser.add_argument(
        "--no-warm-cold",
        action="store_true",
        help="skip the --scale cold-vs-warm summary-DB protocol",
    )
    parser.add_argument(
        "--min-warm-speedup",
        type=float,
        default=None,
        metavar="X",
        help="with --check and --scale, fail unless the warm "
        "(summary-DB hit) run is at least X times faster than cold",
    )
    parser.add_argument(
        "--engine",
        default="tvla-relational",
        choices=ENGINES,
        help="engine for --compare mode",
    )
    parser.add_argument(
        "--reps",
        type=int,
        default=5,
        metavar="N",
        help="timed repetitions per program in --compare mode",
    )
    parser.add_argument(
        "--programs",
        default=None,
        metavar="P1,P2,...",
        help="comma-separated suite-program subset",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=None,
        metavar="X",
        help="with --check and --compare, fail unless the aggregate "
        "steady-state speedup is at least X",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="gate for CI: fail if any engine misses a real error "
        "(precision table) or the paths' alarm sets differ / the "
        "speedup floor is not met (--compare)",
    )
    parser.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        help="write results as JSON ('-' for stdout)",
    )
    parser.add_argument(
        "--force",
        action="store_true",
        help="allow --json to overwrite an existing file",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress the text table"
    )
    _add_governor_arguments(parser)
    return parser


def build_fuzz_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro fuzz",
        description=(
            "Differential fuzzing: generate seeded random Jlite clients, "
            "obtain ground truth from the exhaustive interpreter, certify "
            "with every requested engine, and fail on any soundness "
            "violation (an engine missing a concretely-witnessed error)."
        ),
    )
    parser.add_argument(
        "--seed-range",
        default="0:100",
        metavar="A:B",
        help="half-open seed interval to fuzz (default 0:100)",
    )
    parser.add_argument(
        "--spec",
        default="cmp",
        choices=available_specs(),
        help="specification to certify against (note: the generator "
        "emits Set/Iterator clients shaped for CMP; other specs mostly "
        "exercise the not-applicable paths)",
    )
    parser.add_argument(
        "--engines",
        default=None,
        metavar="E1,E2,...",
        help="comma-separated engines (default: one per fixpoint family)",
    )
    parser.add_argument(
        "--size",
        type=int,
        default=16,
        metavar="N",
        help="statement budget per generated main body",
    )
    parser.add_argument(
        "--depth",
        type=int,
        default=2,
        metavar="N",
        help="max nesting depth of generated branches/loops",
    )
    parser.add_argument(
        "--helpers",
        type=int,
        default=2,
        metavar="N",
        help="max generated static helper methods",
    )
    parser.add_argument(
        "--max-paths",
        type=int,
        default=8_000,
        metavar="N",
        help="oracle exploration budget: concrete paths per program",
    )
    parser.add_argument(
        "--max-steps",
        type=int,
        default=400,
        metavar="N",
        help="oracle exploration budget: steps per concrete path",
    )
    parser.add_argument(
        "--time-budget",
        type=float,
        default=None,
        metavar="SECONDS",
        help="stop generating new seeds after this much wall clock",
    )
    parser.add_argument(
        "--shrink",
        action="store_true",
        help="minimize every gate-failing program before reporting it",
    )
    parser.add_argument(
        "--corpus",
        default=None,
        metavar="DIR",
        help="write (shrunk) gate-failing programs into this corpus dir",
    )
    parser.add_argument(
        "--fail-on-disagreement",
        action="store_true",
        help="also fail when engines disagree on alarm sets (default: "
        "disagreements are reported, only soundness fails the run)",
    )
    parser.add_argument(
        "--emit-cert",
        action="store_true",
        help="certificate round-trip gate: every fuzzed program is also "
        "certified with --emit-cert and the certificate must pass the "
        "independent checker",
    )
    parser.add_argument(
        "--mutate-certs",
        action="store_true",
        help="with --emit-cert, additionally apply one guaranteed-reject "
        "mutation per certificate and fail if the checker accepts it",
    )
    parser.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        help="write the campaign summary as JSON ('-' for stdout)",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress the summary table"
    )
    # --max-steps is taken by the oracle budget above, so the governor's
    # step budget gets a distinct spelling here
    _add_governor_arguments(parser, steps_flag="--governor-steps")
    return parser


def build_certify_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro certify",
        description=(
            "Certify clients and emit proof-carrying conformance "
            "certificates: the post-fixpoint per-node abstract states, "
            "independently re-checkable without re-running any fixpoint "
            "(repro check)."
        ),
    )
    parser.add_argument(
        "client", nargs="?", help="path to the Jlite client source"
    )
    parser.add_argument(
        "--suite",
        default=None,
        metavar="P1,P2,...",
        help="certify these benchmark-suite programs instead of a client",
    )
    parser.add_argument(
        "--all-suite",
        action="store_true",
        help="certify the full benchmark suite",
    )
    parser.add_argument(
        "--spec",
        default="cmp",
        choices=available_specs(),
        help="which shipped specification to certify against",
    )
    parser.add_argument(
        "--engines",
        default=None,
        metavar="E1,E2,...",
        help="comma-separated engines (default: every engine applicable "
        "to each program; 'auto' for a single client)",
    )
    parser.add_argument(
        "--emit-cert",
        default=None,
        metavar="PATH",
        help="write the (single) certificate to this path",
    )
    parser.add_argument(
        "--emit-cert-dir",
        default=None,
        metavar="DIR",
        help="write one <program>-<engine>.cert.json per certification",
    )
    parser.add_argument(
        "--incremental-from",
        default=None,
        metavar="CERT",
        help="seed the fixpoint from this parent certificate "
        "(incremental recertification; falls back to a full run when "
        "the parent is unusable)",
    )
    parser.add_argument(
        "--emit-delta",
        default=None,
        metavar="PATH",
        help="with --incremental-from and a single certification, write "
        "a delta certificate against the parent instead of requiring a "
        "full --emit-cert",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="immediately validate every emitted certificate with the "
        "independent checker; any reject fails the run",
    )
    parser.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        help="write one result envelope per certification as JSON "
        "('-' for stdout)",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress per-run lines"
    )
    return parser


def certify_main(argv: Optional[List[str]] = None) -> int:
    from repro.bench.harness import HEAP_ENGINES, SHALLOW_ENGINES
    from repro.cert import CertificateChecker
    from repro.suite import all_programs

    args = build_certify_parser().parse_args(argv)
    spec = get_spec(args.spec)
    requested = (
        tuple(e.strip() for e in args.engines.split(","))
        if args.engines
        else None
    )
    if requested:
        bad = [e for e in requested if e not in ENGINES]
        if bad:
            print(f"error: unknown engine(s): {bad}", file=sys.stderr)
            return 2

    # (name, source, engines) work items
    items: List = []
    if args.all_suite or args.suite:
        if args.client:
            print(
                "error: give either a client path or a suite selection, "
                "not both",
                file=sys.stderr,
            )
            return 2
        by_name = {p.name: p for p in all_programs()}
        if args.all_suite:
            chosen = list(by_name)
        else:
            chosen = [name.strip() for name in args.suite.split(",")]
            unknown = set(chosen) - set(by_name)
            if unknown:
                print(
                    f"error: unknown suite program(s): {sorted(unknown)}",
                    file=sys.stderr,
                )
                return 2
        for name in sorted(chosen):
            bench = by_name[name]
            applicable = SHALLOW_ENGINES if bench.shallow else HEAP_ENGINES
            engines = tuple(
                e
                for e in (requested or applicable)
                if e != "auto" and e in applicable
            )
            items.append((name, bench.source, engines))
    else:
        if not args.client:
            print("error: no client source given", file=sys.stderr)
            return 2
        with open(args.client) as handle:
            source = handle.read()
        name = args.client.rsplit("/", 1)[-1].rsplit(".", 1)[0]
        engines = tuple(e for e in (requested or ("auto",)))
        items.append((name, source, engines))

    if args.emit_cert and (args.emit_cert_dir or len(items) != 1):
        print(
            "error: --emit-cert takes exactly one certification; use "
            "--emit-cert-dir for suites",
            file=sys.stderr,
        )
        return 2
    parent = None
    if args.incremental_from:
        from repro.cert import CertificateError, ConformanceCertificate

        try:
            parent = ConformanceCertificate.load(args.incremental_from)
        except (OSError, json.JSONDecodeError, CertificateError) as error:
            print(
                f"error: bad parent certificate: {error}", file=sys.stderr
            )
            return 2
    if args.emit_delta:
        if parent is None:
            print(
                "error: --emit-delta needs --incremental-from",
                file=sys.stderr,
            )
            return 2
        if len(items) != 1 or len(items[0][2]) != 1:
            print(
                "error: --emit-delta takes exactly one certification",
                file=sys.stderr,
            )
            return 2
    if args.emit_cert_dir:
        import os

        os.makedirs(args.emit_cert_dir, exist_ok=True)

    import time as _time

    from repro import envelope as _envelope
    from repro.runtime.trace import CollectingTracer, use_tracer

    session = CertifySession(
        spec, options=CertifyOptions(emit_certificate=True)
    )
    checker = CertificateChecker() if args.check else None
    rejects = 0
    records: List[dict] = []
    for name, source, engines in items:
        for engine in engines:
            tracer = CollectingTracer()
            started = _time.monotonic()
            with use_tracer(tracer):
                report = session.certify(
                    source, engine=engine, incremental_from=parent
                )
            seconds = _time.monotonic() - started
            cert = report.certificate
            cert_path = None
            line = (
                f"{name:24s} {report.engine:18s} "
                + ("CERTIFIED" if report.certified else
                   f"{len(report.alarms)} alarm(s)")
            )
            if parent is not None:
                line += (
                    "  [incremental]"
                    if report.stats.get("incremental")
                    else "  [full fallback]"
                )
            if cert is not None:
                if args.emit_cert:
                    cert.write(args.emit_cert)
                    cert_path = args.emit_cert
                if args.emit_cert_dir:
                    cert_path = (
                        f"{args.emit_cert_dir}/{name}-{report.engine}"
                        ".cert.json"
                    )
                    cert.write(cert_path)
                line += f"  [{len(cert.text())} cert bytes]"
                if args.emit_delta:
                    from repro.cert import (
                        delta_text,
                        encode_delta,
                        write_delta,
                    )

                    delta = encode_delta(parent, cert)
                    write_delta(delta, args.emit_delta)
                    line += (
                        f"  [{len(delta_text(delta))} delta bytes "
                        f"-> {args.emit_delta}]"
                    )
                if checker is not None:
                    result = checker.check(cert)
                    if not result.ok:
                        rejects += 1
                        line += f"  CHECK-{result.kind.upper()}"
                    elif args.emit_delta:
                        from repro.cert import check_delta

                        delta_result, _ = check_delta(
                            parent, delta, checker, spec=spec
                        )
                        if not delta_result.ok:
                            rejects += 1
                            line += (
                                f"  DELTA-{delta_result.kind.upper()}"
                            )
            records.append(
                {
                    "name": name,
                    **_envelope.report_envelope(
                        report,
                        seconds=seconds,
                        events=tracer.events,
                        certificate_path=cert_path,
                    ),
                }
            )
            if not args.quiet:
                print(line)
    if args.json:
        payload = {"spec": args.spec, "certifications": records}
        if args.json == "-":
            print(json.dumps(payload, indent=2, sort_keys=True))
        else:
            with open(args.json, "w") as handle:
                json.dump(payload, handle, indent=2, sort_keys=True)
                handle.write("\n")
    if rejects:
        print(f"{rejects} certificate(s) failed the check", file=sys.stderr)
        return 1
    return 0


def build_check_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro check",
        description=(
            "Independently validate proof-carrying conformance "
            "certificates in one linear pass (no fixpoint is re-run): "
            "inductiveness of the annotation, coverage of every "
            "reachable node, and entailment of the claimed alarm set."
        ),
    )
    parser.add_argument(
        "certs", nargs="+", metavar="CERT", help="certificate files"
    )
    parser.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        help="write per-certificate results as JSON ('-' for stdout)",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress per-certificate lines"
    )
    return parser


def check_main(argv: Optional[List[str]] = None) -> int:
    from repro.cert import (
        CertificateChecker,
        CertificateError,
        ConformanceCertificate,
    )

    import time as _time

    from repro import envelope as _envelope

    args = build_check_parser().parse_args(argv)
    checker = CertificateChecker()
    records = []
    accepted = rejected = 0
    for path in args.certs:
        cert = None
        started = _time.monotonic()
        try:
            cert = ConformanceCertificate.load(path)
            result = checker.check(cert)
        except (OSError, json.JSONDecodeError, CertificateError) as error:
            from repro.cert.check import CheckResult

            result = CheckResult(
                ok=False, kind="malformed", detail=str(error)
            )
        seconds = _time.monotonic() - started
        if result.ok:
            accepted += 1
        else:
            rejected += 1
        # record = the shared envelope plus the per-file bookkeeping the
        # summary (and CI) reads without digging into sections
        records.append(
            {
                "path": path,
                "ok": result.ok,
                **_envelope.check_envelope(
                    result, certificate=cert, path=path, seconds=seconds
                ),
            }
        )
        if not args.quiet:
            print(f"{path}: {result.describe()}")
    payload = {
        "accepted": accepted,
        "rejected": rejected,
        "certificates": records,
    }
    if args.json == "-":
        print(json.dumps(payload, indent=2, sort_keys=True))
    elif args.json:
        with open(args.json, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
    if not args.quiet:
        print(f"{accepted} accepted, {rejected} rejected")
    return 0 if rejected == 0 else 1


def _parse_seed_range(text: str) -> Optional[range]:
    parts = text.split(":")
    if len(parts) != 2:
        return None
    try:
        start, stop = int(parts[0]), int(parts[1])
    except ValueError:
        return None
    if start < 0 or stop < start:
        return None
    return range(start, stop)


def fuzz_main(argv: Optional[List[str]] = None) -> int:
    from repro.fuzz import (
        DEFAULT_FUZZ_ENGINES,
        FuzzConfig,
        Oracle,
        run_campaign,
    )
    from repro.fuzz.shrink import (
        corpus_entry_name,
        shrink_source,
        write_corpus_entry,
    )
    from repro.runtime.interp import ExplorationBudget

    args = build_fuzz_parser().parse_args(argv)
    seeds = _parse_seed_range(args.seed_range)
    if seeds is None:
        print(
            f"error: bad --seed-range {args.seed_range!r} "
            "(expected A:B with 0 <= A <= B)",
            file=sys.stderr,
        )
        return 2
    engines = (
        tuple(e.strip() for e in args.engines.split(","))
        if args.engines
        else DEFAULT_FUZZ_ENGINES
    )
    bad = [e for e in engines if e not in ENGINES or e == "auto"]
    if bad:
        print(f"error: unknown engine(s): {bad}", file=sys.stderr)
        return 2
    config = FuzzConfig(
        max_stmts=args.size,
        max_depth=args.depth,
        max_helpers=args.helpers,
    )
    oracle = Oracle(
        ExplorationBudget(
            max_paths=args.max_paths, max_steps_per_path=args.max_steps
        )
    )
    options = _governor_options(args)
    spec = get_spec(args.spec)
    gate = None
    if args.emit_cert or args.mutate_certs:
        from repro.fuzz import CertGate

        gate = CertGate(
            spec,
            engines,
            options=options,
            mutate=args.mutate_certs,
            mutation_seed=seeds.start,
        )
    result = run_campaign(
        seeds,
        spec,
        engines=engines,
        config=config,
        oracle=oracle,
        time_budget=args.time_budget,
        options=options,
        on_case=gate,
    )

    shrunk: List[str] = []
    if args.shrink or args.corpus:
        from repro.fuzz import run_case
        existing: List[str] = []
        for case in result.failures:
            signature = case.failure_signature()

            def still_fails(source: str, _sig=signature) -> bool:
                candidate = run_case(
                    source, spec, engines, oracle=oracle, options=options
                )
                return bool(candidate.failure_signature() & _sig)

            reduced = (
                shrink_source(case.source, still_fails)
                if args.shrink
                else case.source
            )
            shrunk.append(reduced)
            if args.corpus:
                kind = sorted(k for _e, k in signature)[0]
                name = corpus_entry_name(case.seed, kind, existing)
                existing.append(name)
                write_corpus_entry(
                    args.corpus,
                    name,
                    reduced,
                    {
                        "kind": kind,
                        "spec": args.spec,
                        "seed": case.seed,
                        "engines": list(engines),
                        "failure": sorted(
                            f"{e}:{k}" for e, k in signature
                        ),
                        "oracle_failing_lines": sorted(
                            case.verdict.failing_lines()
                        ),
                    },
                )

    payload = result.to_json()
    payload["shrunk_reproducers"] = shrunk
    if gate is not None:
        payload["certificates"] = gate.result.to_json()
    if args.json == "-":
        print(json.dumps(payload, indent=2, sort_keys=True))
    elif args.json:
        with open(args.json, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
    if not args.quiet:
        print(result.format_summary())
        if gate is not None:
            g = gate.result
            print(
                f"certificates: {g.emitted} emitted, {g.accepted} accepted, "
                f"{g.rejected} rejected, {g.skipped} skipped; "
                f"{g.mutants_rejected}/{g.mutants} mutants rejected"
            )
            for failure in g.failures:
                print(f"  certificate gate: {failure}")
        for source in shrunk:
            print("\nshrunk reproducer:\n" + source)
    ok = result.ok and not (
        args.fail_on_disagreement and result.disagreements
    )
    if gate is not None and not gate.result.ok:
        ok = False
    return 0 if ok else 1


def bench_main(argv: Optional[List[str]] = None) -> int:
    from repro.bench import (
        results_to_json,
        run_comparison,
        run_precision_table,
    )
    from repro.bench.harness import format_table
    from repro.suite import all_programs

    args = build_bench_parser().parse_args(argv)
    spec = get_spec(args.spec)
    programs = None
    if args.programs:
        wanted = {name.strip() for name in args.programs.split(",")}
        by_name = {p.name: p for p in all_programs()}
        unknown = wanted - set(by_name)
        if unknown:
            print(
                f"error: unknown suite program(s): {sorted(unknown)}",
                file=sys.stderr,
            )
            return 2
        programs = [by_name[name] for name in sorted(wanted)]

    options = _governor_options(args)
    if args.scale:
        from repro.bench.scale import (
            DEFAULT_ENGINES,
            DEFAULT_FAMILIES,
            DEFAULT_SIZES,
            run_scale,
        )
        from repro.bench.synthetic import SCALE_FAMILIES

        sizes = list(DEFAULT_SIZES)
        if args.scale_sizes:
            try:
                sizes = [
                    int(part) for part in args.scale_sizes.split(",") if part
                ]
            except ValueError:
                print(
                    f"error: bad --scale-sizes: {args.scale_sizes!r}",
                    file=sys.stderr,
                )
                return 2
        families = list(DEFAULT_FAMILIES)
        if args.families:
            families = [
                part.strip() for part in args.families.split(",") if part
            ]
            bad = [f for f in families if f not in SCALE_FAMILIES]
            if bad:
                print(
                    f"error: unknown scale family(s): {bad}; pick from "
                    f"{sorted(SCALE_FAMILIES)}",
                    file=sys.stderr,
                )
                return 2
        engines = list(DEFAULT_ENGINES)
        if args.scale_engines:
            engines = [
                part.strip() for part in args.scale_engines.split(",") if part
            ]
            bad = [e for e in engines if e not in ENGINES]
            if bad:
                print(f"error: unknown engine(s): {bad}", file=sys.stderr)
                return 2
        progress = None if args.quiet else (
            lambda line: print(f"  {line}", file=sys.stderr)
        )
        report = run_scale(
            families=families,
            sizes=sizes,
            engines=engines,
            seed=args.scale_seed,
            warm_cold=not args.no_warm_cold,
            warm_cold_target=args.warm_cold_target,
            superlinear_factor=args.superlinear_factor,
            progress=progress,
        )
        payload = report.to_json()
        # the CI gate: no hard errors, no superlinear blowup, and when
        # the warm/cold protocol ran its certificates must be
        # byte-identical with alarm parity (plus the speedup floor)
        ok = not any(r.status == "error" for r in report.rows)
        ok = ok and not payload["superlinear"]
        if report.warm_cold is not None:
            w = report.warm_cold
            ok = ok and w.certificates_identical and w.alarms_equal
            if args.min_warm_speedup is not None:
                ok = ok and w.speedup >= args.min_warm_speedup
        elif args.min_warm_speedup is not None:
            ok = False
        if not args.quiet:
            print(report.format())
    elif args.incremental:
        from repro.bench.incremental import run_incremental_bench

        try:
            distances = [
                int(part) for part in args.distances.split(",") if part
            ]
        except ValueError:
            print(
                f"error: bad --distances: {args.distances!r}",
                file=sys.stderr,
            )
            return 2
        result = run_incremental_bench(
            spec=spec,
            seeds=args.seeds,
            edits=args.edits,
            edit_seed=args.edit_seed,
            distances=distances,
            reps=args.reps,
        )
        payload = result.to_json()
        ok = result.ok(args.min_speedup or 0.0)
        if not args.quiet:
            print(result.format(args.min_speedup or 0.0))
    elif args.packed_compare:
        from repro.bench.harness import run_packed_comparison

        sizes = None
        if args.sizes:
            try:
                sizes = [
                    tuple(int(part) for part in chunk.split(":"))
                    for chunk in args.sizes.split(",")
                ]
                if any(len(size) != 4 for size in sizes):
                    raise ValueError("each size needs 4 fields")
            except ValueError as error:
                print(f"error: bad --sizes: {error}", file=sys.stderr)
                return 2
        try:
            workers = [
                int(part) for part in args.batch_workers.split(",")
            ]
        except ValueError:
            print(
                f"error: bad --batch-workers: {args.batch_workers!r}",
                file=sys.stderr,
            )
            return 2
        kwargs = {"reps": args.reps, "batch_workers": workers,
                  "spec_name": args.spec}
        if sizes:
            kwargs["sizes"] = sizes
        comparison = run_packed_comparison(
            spec=spec, options=options, **kwargs
        )
        payload = comparison.to_json()
        # the CI floor applies to the honest end-to-end steady-state
        # aggregate; alarm equality and certificate identity always gate
        ok = (
            comparison.alarms_equal
            and comparison.certificates_identical
            and (
                args.min_speedup is None
                or comparison.steady_speedup >= args.min_speedup
            )
        )
        if not args.quiet:
            print(comparison.format())
    elif args.compare:
        comparison = run_comparison(
            spec=spec,
            engine=args.engine,
            programs=programs,
            reps=args.reps,
            options=options,
        )
        payload = comparison.to_json()
        ok = comparison.alarms_equal and (
            args.min_speedup is None
            or comparison.speedup >= args.min_speedup
        )
        if not args.quiet:
            print(comparison.format())
    else:
        engines = (
            [e.strip() for e in args.engines.split(",")]
            if args.engines
            else None
        )
        if engines:
            bad = [e for e in engines if e not in ENGINES]
            if bad:
                print(f"error: unknown engine(s): {bad}", file=sys.stderr)
                return 2
        results = run_precision_table(
            spec=spec, engines=engines, programs=programs, options=options
        )
        payload = results_to_json(results)
        ok = all(
            run.sound
            for result in results
            for run in result.runs.values()
        )
        if not args.quiet:
            print(format_table(results))

    from repro.bench.scale import host_meta

    # every committed BENCH_*.json row set carries the same host
    # provenance (cpu count, python version, packed kernel), whichever
    # bench mode produced it
    payload.setdefault("meta", host_meta())
    if args.json == "-":
        print(json.dumps(payload, indent=2, sort_keys=True))
    elif args.json:
        if os.path.exists(args.json) and not args.force:
            print(
                f"error: {args.json} exists; pass --force to overwrite",
                file=sys.stderr,
            )
            return 2
        with open(args.json, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
    if args.check and not ok:
        print("bench check FAILED", file=sys.stderr)
        return 1
    return 0


def batch_main(argv: Optional[List[str]] = None) -> int:
    from repro.runtime.batch import BatchRunner, ManifestError, load_manifest

    args = build_batch_parser().parse_args(argv)

    if args.merge_shards:
        from repro.runtime.coordinator import merge_shards

        if not args.shard_dir:
            print(
                "error: --merge-shards requires --shard-dir",
                file=sys.stderr,
            )
            return 2
        try:
            summary = merge_shards(args.shard_dir)
        except (OSError, json.JSONDecodeError, ValueError) as error:
            print(f"error: merge failed: {error}", file=sys.stderr)
            return 2
        if args.json == "-":
            print(json.dumps(summary, indent=2, sort_keys=True))
        elif args.json:
            with open(args.json, "w") as handle:
                json.dump(summary, handle, indent=2, sort_keys=True)
                handle.write("\n")
        if not args.quiet:
            print(
                f"merged {summary['merged']}/{summary['jobs_journaled']} "
                f"certificates from {summary['shards']} shard(s) into "
                f"{summary['dest']} "
                f"({len(summary['mismatched'])} mismatched, "
                f"{len(summary['missing'])} missing)"
            )
        return 0 if summary["ok"] else 1

    if args.shard_index is not None:
        from repro.runtime.coordinator import run_shard

        if not args.shard_dir:
            print(
                "error: --shard-index requires --shard-dir",
                file=sys.stderr,
            )
            return 2
        try:
            result = run_shard(
                args.shard_dir,
                args.shard_index,
                max_workers=args.jobs,
                resume=args.resume,
                default_timeout=args.timeout,
                default_fallback=args.fallback,
            )
        except (OSError, json.JSONDecodeError, ValueError) as error:
            print(f"error: shard run failed: {error}", file=sys.stderr)
            return 2
        if args.json == "-":
            print(json.dumps(result.to_json(), indent=2, sort_keys=True))
        elif args.json:
            with open(args.json, "w") as handle:
                json.dump(
                    result.to_json(), handle, indent=2, sort_keys=True
                )
                handle.write("\n")
        if not args.quiet:
            print(result.format_summary())
        return 0 if result.ok else 1

    if args.manifest is None:
        print(
            "error: a manifest is required unless --shard-index or "
            "--merge-shards is given",
            file=sys.stderr,
        )
        return 2
    try:
        jobs = load_manifest(args.manifest)
    except (OSError, json.JSONDecodeError, ManifestError) as error:
        print(f"error: bad manifest: {error}", file=sys.stderr)
        return 2
    if args.resume and not (args.checkpoint_dir or args.shard_dir):
        print("error: --resume requires --checkpoint-dir", file=sys.stderr)
        return 2

    if args.write_shards:
        from repro.runtime.coordinator import write_shard_plan

        if not args.shard_dir:
            print(
                "error: --write-shards requires --shard-dir",
                file=sys.stderr,
            )
            return 2
        plan = write_shard_plan(
            jobs, args.shard_dir, shards=args.shards or max(args.jobs, 1)
        )
        if not args.quiet:
            print(
                f"wrote shard plan {plan['run_id']}: {plan['shards']} "
                f"shard(s) over {len(jobs)} job(s) in {args.shard_dir}"
            )
        return 0

    if args.shards is not None or args.shard_dir:
        from repro.runtime.coordinator import WorkStealingCoordinator

        coordinator = WorkStealingCoordinator(
            jobs,
            shards=args.shards,
            max_workers=args.jobs,
            shard_dir=args.shard_dir,
            resume=args.resume,
            default_timeout=args.timeout,
            default_fallback=args.fallback,
            max_retries=args.retries,
            emit_certs=args.emit_certs is not None or bool(args.shard_dir),
        )
        result = coordinator.run()
        if args.trace:
            result.batch.write_trace(args.trace)
        if args.json == "-":
            print(json.dumps(result.to_json(), indent=2, sort_keys=True))
        elif args.json:
            with open(args.json, "w") as handle:
                json.dump(
                    result.to_json(), handle, indent=2, sort_keys=True
                )
                handle.write("\n")
        if not args.quiet:
            print(result.format_summary())
        return 0 if result.batch.ok else 1

    runner = BatchRunner(
        jobs,
        max_workers=args.jobs,
        default_timeout=args.timeout,
        default_fallback=args.fallback,
        max_retries=args.retries,
        default_deadline=args.deadline,
        default_max_steps=args.governor_steps,
        default_max_structures=args.max_structures,
        default_ladder=True if args.ladder else None,
        emit_certs_dir=args.emit_certs,
        checkpoint_dir=args.checkpoint_dir,
        run_id=args.run_id,
        resume=args.resume,
    )
    result = runner.run()
    if args.trace:
        result.write_trace(args.trace)
    if args.json == "-":
        print(json.dumps(result.to_json(), indent=2, sort_keys=True))
    elif args.json:
        with open(args.json, "w") as handle:
            json.dump(result.to_json(), handle, indent=2, sort_keys=True)
            handle.write("\n")
    if not args.quiet:
        print(result.format_summary())
        if args.trace:
            print(f"trace: {args.trace}")
    return 0 if result.ok else 1


def build_serve_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro serve",
        description=(
            "Run the long-lived certification service: warm analysis "
            "sessions per spec, a bounded request queue with 429 "
            "backpressure, per-tenant resource budgets, and a "
            "content-addressed certificate store (hit = linear check, "
            "miss = certify + store).  HTTP/JSON on POST /certify, "
            "POST /check, GET /certificates/<hash>, /healthz, /stats."
        ),
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument(
        "--port",
        type=int,
        default=8091,
        help="bind port (0 picks an ephemeral one)",
    )
    parser.add_argument(
        "--specs",
        default=None,
        metavar="S1,S2,...",
        help="comma-separated specs to serve (default: every registered "
        f"spec: {','.join(available_specs())})",
    )
    parser.add_argument(
        "--engine",
        default="auto",
        choices=ENGINES,
        help="default engine for requests that name none",
    )
    parser.add_argument(
        "--workers", type=int, default=2, metavar="N", help="worker threads"
    )
    parser.add_argument(
        "--worker-mode",
        default="thread",
        choices=("thread", "process"),
        help="'process' offloads each certify-on-miss fixpoint to a "
        "process pool of --workers, scaling the CPU-bound path past "
        "the GIL's ~2-core ceiling (default: thread)",
    )
    parser.add_argument(
        "--queue-limit",
        type=int,
        default=64,
        metavar="N",
        help="queued requests beyond which new ones get 429",
    )
    parser.add_argument(
        "--store",
        default=None,
        metavar="DIR",
        help="persist the certificate store under DIR (default: in-memory)",
    )
    parser.add_argument(
        "--tenants",
        default=None,
        metavar="PATH",
        help="JSON file mapping tenant name to a budget object with any "
        "of deadline, max_steps, max_structures, quota_steps",
    )
    parser.add_argument(
        "--retry-after",
        type=float,
        default=1.0,
        metavar="SECONDS",
        help="Retry-After hint on 429 refusals",
    )
    parser.add_argument(
        "--prewarm",
        action="store_true",
        help="derive every served spec's abstraction before accepting "
        "traffic (otherwise sessions warm on first request)",
    )
    parser.add_argument(
        "--drain-timeout",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="on SIGTERM/SIGINT: stop admitting, finish in-flight "
        "requests for up to this long, flush the store, then exit "
        "(a second signal aborts the wait)",
    )
    parser.add_argument(
        "--heartbeat",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-request wall-clock bound for process workers; a "
        "worker exceeding it is killed and the request retried once "
        "(default: no bound)",
    )
    parser.add_argument(
        "--summary-db",
        default=None,
        metavar="DIR",
        help="persistent interprocedural summary store: certify-on-miss "
        "loads procedure summaries by (spec, body, context) hash and "
        "persists newly computed ones under DIR",
    )
    group = parser.add_argument_group(
        "default tenant budget",
        "per-request governor caps for tenants without a --tenants entry",
    )
    group.add_argument(
        "--deadline", type=float, default=None, metavar="SECONDS"
    )
    group.add_argument("--max-steps", type=int, default=None, metavar="N")
    group.add_argument(
        "--max-structures", type=int, default=None, metavar="N"
    )
    group.add_argument(
        "--quota-steps",
        type=int,
        default=None,
        metavar="N",
        help="cumulative fixpoint-step quota per tenant (429 once spent)",
    )
    return parser


def serve_main(argv: Optional[List[str]] = None) -> int:
    import asyncio

    from repro.serve import ServeConfig, ServeDaemon, TenantBudget

    args = build_serve_parser().parse_args(argv)
    specs = (
        tuple(s.strip().lower() for s in args.specs.split(","))
        if args.specs
        else ()
    )
    unknown = [s for s in specs if s not in available_specs()]
    if unknown:
        print(
            f"error: unknown spec(s) {unknown}; "
            f"registered: {available_specs()}",
            file=sys.stderr,
        )
        return 2
    tenants = {}
    if args.tenants:
        try:
            with open(args.tenants) as handle:
                raw = json.load(handle)
            tenants = {
                str(name): TenantBudget.from_json(budget)
                for name, budget in raw.items()
            }
        except (OSError, json.JSONDecodeError, ValueError, TypeError) as error:
            print(f"error: bad --tenants file: {error}", file=sys.stderr)
            return 2
    config = ServeConfig(
        host=args.host,
        port=args.port,
        specs=specs,
        options=CertifyOptions(
            emit_certificate=True, summary_db=args.summary_db
        ),
        default_engine=args.engine,
        workers=args.workers,
        worker_mode=args.worker_mode,
        queue_limit=args.queue_limit,
        store_path=args.store,
        retry_after=args.retry_after,
        heartbeat=args.heartbeat,
        default_budget=TenantBudget(
            deadline=args.deadline,
            max_steps=args.max_steps,
            max_structures=args.max_structures,
            quota_steps=args.quota_steps,
        ),
        tenants=tenants,
    )

    async def run() -> None:
        daemon = ServeDaemon(config=config)
        await daemon.start()
        daemon.install_signal_handlers(args.drain_timeout)
        if args.prewarm:
            daemon.service.prewarm()
        print(
            f"repro serve: listening on {config.host}:{daemon.port} "
            f"(specs: {', '.join(sorted(daemon.service.healthz()['specs']))}; "
            f"{config.workers} {config.worker_mode} worker(s), "
            f"queue {config.queue_limit})",
            flush=True,
        )
        try:
            await daemon.serve_forever()
        finally:
            await daemon.stop()

    try:
        asyncio.run(run())
    except KeyboardInterrupt:
        pass
    return 0


def build_bench_serve_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro bench serve",
        description=(
            "Load-generate against an in-process certification service: "
            "a cold phase (distinct clients, all store misses), a hot "
            "concurrent phase (repeats, all store hits answered by the "
            "linear-pass checker), and a queue-overflow backpressure "
            "probe.  Reports p50/p99 latency, throughput, hit rate and "
            "the check-on-hit vs certify-on-miss speedup."
        ),
    )
    parser.add_argument(
        "--spec", default="cmp", choices=available_specs()
    )
    parser.add_argument(
        "--engine",
        default="tvla-relational",
        choices=[e for e in ENGINES if e != "auto"],
        help="engine driven by every request",
    )
    parser.add_argument(
        "--clients",
        type=int,
        default=8,
        metavar="N",
        help="distinct synthetic clients (cold-phase size)",
    )
    parser.add_argument(
        "--requests",
        type=int,
        default=32,
        metavar="N",
        help="hot-phase request count over the same clients",
    )
    parser.add_argument(
        "--concurrency",
        type=int,
        default=8,
        metavar="N",
        help="concurrent connections in both measured phases",
    )
    parser.add_argument(
        "--ops",
        type=int,
        default=96,
        metavar="N",
        help="operations per synthetic client (fixpoint weight)",
    )
    parser.add_argument(
        "--workers", type=int, default=2, metavar="N", help="service workers"
    )
    parser.add_argument(
        "--worker-mode",
        default="thread",
        choices=("thread", "process"),
        help="service executor flavour (process = certify-on-miss runs "
        "on a process pool)",
    )
    parser.add_argument(
        "--min-speedup",
        type=float,
        default=5.0,
        metavar="X",
        help="with --check, fail unless hit-check p50 beats cold-certify "
        "p50 by at least this factor",
    )
    parser.add_argument(
        "--check",
        action="store_true",
        help="gate for CI: fail unless verdicts are identical on hits, "
        "hits skip the fixpoint, the speedup floor holds, and the "
        "backpressure probe drops no accepted work",
    )
    parser.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        help="write results as JSON ('-' for stdout)",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress the text summary"
    )
    return parser


def bench_serve_main(argv: Optional[List[str]] = None) -> int:
    from repro.serve.loadgen import (
        ServeBenchConfig,
        format_serve_bench,
        run_serve_bench,
        serve_bench_ok,
    )

    args = build_bench_serve_parser().parse_args(argv)
    results = run_serve_bench(
        ServeBenchConfig(
            spec=args.spec,
            engine=args.engine,
            clients=args.clients,
            num_ops=args.ops,
            hit_requests=args.requests,
            concurrency=args.concurrency,
            workers=args.workers,
            worker_mode=args.worker_mode,
        )
    )
    if isinstance(results, dict):
        from repro.bench.scale import host_meta

        results.setdefault("meta", host_meta())
    if args.json == "-":
        print(json.dumps(results, indent=2, sort_keys=True))
    elif args.json:
        with open(args.json, "w") as handle:
            json.dump(results, handle, indent=2, sort_keys=True)
            handle.write("\n")
    if not args.quiet:
        print(format_serve_bench(results))
    if args.check and not serve_bench_ok(
        results, min_speedup=args.min_speedup
    ):
        print("bench serve check FAILED", file=sys.stderr)
        return 1
    return 0


def build_store_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro store",
        description=(
            "Maintain an on-disk certificate or summary store.  'gc' "
            "evicts least-recently-used objects until the store fits the "
            "given limits and prunes index entries left dangling by "
            "evictions."
        ),
    )
    parser.add_argument(
        "action", choices=("gc",), help="maintenance action to run"
    )
    parser.add_argument(
        "--store",
        required=True,
        metavar="DIR",
        help="root of the on-disk store",
    )
    parser.add_argument(
        "--kind",
        default="certs",
        choices=("certs", "summaries"),
        help="which store lives at --store: certificates (default) or "
        "interprocedural procedure summaries",
    )
    parser.add_argument(
        "--max-bytes",
        type=int,
        default=None,
        metavar="N",
        help="evict oldest objects until total object bytes <= N",
    )
    parser.add_argument(
        "--max-entries",
        type=int,
        default=None,
        metavar="N",
        help="evict oldest objects until the object count <= N",
    )
    parser.add_argument(
        "--json",
        action="store_true",
        help="print the gc summary as JSON instead of text",
    )
    return parser


def store_main(argv: Optional[List[str]] = None) -> int:
    from repro.store import CertificateStore, SummaryStore

    args = build_store_parser().parse_args(argv)
    if not os.path.isdir(args.store):
        print(
            f"error: {args.store!r} is not a directory", file=sys.stderr
        )
        return 2
    if args.max_bytes is None and args.max_entries is None:
        print(
            "error: gc needs --max-bytes and/or --max-entries",
            file=sys.stderr,
        )
        return 2
    # both stores share the gc contract (and summary-dict shape), so
    # the reporting below is kind-agnostic
    store_cls = SummaryStore if args.kind == "summaries" else CertificateStore
    store = store_cls(args.store)
    summary = store.gc(
        max_bytes=args.max_bytes, max_entries=args.max_entries
    )
    if args.json:
        print(json.dumps(summary, indent=2, sort_keys=True))
    else:
        print(
            f"store gc: {summary['evicted']} object(s) evicted, "
            f"{summary['index_pruned']} index entr(ies) pruned; "
            f"{summary['objects_after']} object(s) / "
            f"{summary['bytes_after']} byte(s) remain "
            f"(was {summary['objects_before']} / "
            f"{summary['bytes_before']})"
        )
    return 0


def build_chaos_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro chaos",
        description=(
            "Run a seeded fault-injection campaign against the stateful "
            "layers: torn/ENOSPC/EIO store writes with crash recovery, "
            "SIGKILLed serve workers with supervised retry, and "
            "SIGKILLed batch runs with checkpoint/resume.  Exits 1 the "
            "moment any schedule violates an invariant (a certificate "
            "failing the linear checker, or a verdict differing from a "
            "fault-free run)."
        ),
    )
    parser.add_argument(
        "--schedules",
        type=int,
        default=100,
        metavar="N",
        help="fault schedules to run (default: 100)",
    )
    parser.add_argument(
        "--seed",
        type=int,
        default=0,
        metavar="S",
        help="campaign seed; every schedule's fault point derives "
        "deterministically from it",
    )
    parser.add_argument(
        "--layers",
        default="store,serve,batch",
        metavar="L1,L2,...",
        help="comma-separated layers to attack (default: store, serve "
        "and batch; 'coordinator' and 'summarydb' attack the "
        "work-stealing shards and the persistent summary database and "
        "run only when named)",
    )
    parser.add_argument(
        "--workdir",
        default=None,
        metavar="DIR",
        help="scratch directory (default: a fresh temp dir)",
    )
    parser.add_argument(
        "--json",
        default=None,
        metavar="PATH",
        help="write the full campaign report as JSON ('-' for stdout)",
    )
    parser.add_argument(
        "--quiet",
        action="store_true",
        help="suppress per-schedule progress lines",
    )
    return parser


def chaos_main(argv: Optional[List[str]] = None) -> int:
    from repro.testing.chaos import SCENARIOS, run_campaign

    args = build_chaos_parser().parse_args(argv)
    layers = tuple(
        layer.strip().lower()
        for layer in args.layers.split(",")
        if layer.strip()
    )
    unknown = [layer for layer in layers if layer not in SCENARIOS]
    if unknown:
        print(
            f"error: unknown layer(s) {unknown}; "
            f"known: {sorted(SCENARIOS)}",
            file=sys.stderr,
        )
        return 2
    report = run_campaign(
        args.schedules,
        seed=args.seed,
        layers=layers,
        workdir=args.workdir,
        progress=None if args.quiet else lambda line: print(line, flush=True),
    )
    if args.json == "-":
        print(json.dumps(report.to_json(), indent=2, sort_keys=True))
    elif args.json:
        with open(args.json, "w") as handle:
            json.dump(report.to_json(), handle, indent=2, sort_keys=True)
            handle.write("\n")
    print(report.format_summary())
    return 0 if report.ok else 1


def main(argv: Optional[List[str]] = None) -> int:
    argv = list(sys.argv[1:]) if argv is None else list(argv)
    if argv and argv[0] == "batch":
        return batch_main(argv[1:])
    if argv and argv[0] == "chaos":
        return chaos_main(argv[1:])
    if argv and argv[0] == "store":
        return store_main(argv[1:])
    if argv and argv[0] == "bench":
        if len(argv) > 1 and argv[1] == "serve":
            return bench_serve_main(argv[2:])
        return bench_main(argv[1:])
    if argv and argv[0] == "fuzz":
        return fuzz_main(argv[1:])
    if argv and argv[0] == "certify":
        return certify_main(argv[1:])
    if argv and argv[0] == "check":
        return check_main(argv[1:])
    if argv and argv[0] == "serve":
        return serve_main(argv[1:])

    args = build_parser().parse_args(argv)
    spec = get_spec(args.spec)

    if args.show_abstraction:
        abstraction = CertifySession(spec).abstraction()
        print(abstraction.describe())
        stats = abstraction.stats
        print(
            f"\n{stats.families} families, {stats.wp_calls} WP calls, "
            f"{stats.equivalence_checks} equivalence checks, "
            f"{stats.elapsed_seconds:.2f}s"
        )
        return 0

    if not args.client:
        print("error: no client source given", file=sys.stderr)
        return 2

    with open(args.client) as handle:
        source = handle.read()

    session = CertifySession(
        spec,
        args.engine,
        CertifyOptions(prune_requires=not args.no_prune),
    )
    report = session.certify(source)
    print(report.describe())

    if args.ground_truth:
        program = parse_program(source, spec)
        truth = explore(program)
        summary = truth.compare(report.alarm_sites())
        print(
            f"ground truth: {summary.real_errors} real error site(s); "
            f"{summary.false_alarms} false alarm(s); "
            f"{summary.missed_errors} missed"
            + (" [exploration truncated]" if truth.truncated else "")
        )

    return 0 if report.certified else 1


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
