"""The TVLA fixpoint engine (Section 5.5).

Interprets TVP actions over 3-valued structures in two modes:

* ``mode="relational"`` — the set of canonically-abstracted structures
  arising at each program point, with *focus* materializing individuals
  so the pointer formulas named by each action evaluate definitely;
* ``mode="independent"`` — one structure per point approximating all of
  them (no focus; joins blur disagreements to ``1/2``).

``requires`` checks raise an alarm unless their condition is definitely
true; with ``prune_requires`` the analysis then assumes the component
threw — matching the dynamic CME check — by forcing the checked nullary
predicate false on the surviving state.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.certifier.report import Alarm, CertificationReport
from repro.logic import compile as formula_compile
from repro.logic import packed as packed_kernel
from repro.logic.formula import Not, PredAtom
from repro.logic.kleene import FALSE3, HALF, TRUE3
from repro.runtime import guard as _guard
from repro.runtime.guard import ResourceExhausted, ResourceGovernor
from repro.runtime.trace import phase as trace_phase
from repro.tvla.three_valued import ThreeValuedStructure
from repro.tvp.program import Action, TvpProgram
from repro.util.worklist import make_worklist


class TvlaBudgetExceeded(ResourceExhausted):
    """An engine-internal TVLA budget tripped (iterations/structures)."""

    def __init__(
        self, message: str, *, breach: str = "steps", partial=None
    ) -> None:
        super().__init__(message, breach=breach, partial=partial)


@dataclass
class _CheckContribution:
    """Accumulated evaluations of one ``requires`` check site.

    ``alarmed`` is an OR over contributing structures (any evaluation
    that was not definitely-true alarms); ``all_fail`` is an AND (the
    alarm is *definite* only when every structure reaching the check —
    including ones where it passes — evaluated definitely-false).
    """

    line: int
    op_key: str
    instance: str
    alarmed: bool
    all_fail: bool

    def merge(self, alarmed: bool, all_fail: bool) -> None:
        self.alarmed = self.alarmed or alarmed
        self.all_fail = self.all_fail and all_fail


@dataclass
class TvlaSeed:
    """Warm-start for :meth:`TvlaEngine.run` (incremental recertification).

    ``states`` / ``single`` carry the parent fixpoint's annotations on
    the *clean* nodes (already mapped to this program's node ids);
    ``frontier`` lists the clean nodes with at least one dirty successor
    — the only places new work can originate.  The seeded run converges
    to the same least fixpoint as a cold run (the seed is exactly the
    cold fixpoint restricted to a predecessor-closed region), and alarms
    are then recovered by a checker-style replay over the final states,
    which coincides with cold-run accumulation because per-site
    contributions are monotone (``alarmed`` ORs, ``all_fail`` ANDs) and
    every structure the cold run ever applied persists in the final
    relational buckets.
    """

    states: Optional[Dict[int, Dict[object, ThreeValuedStructure]]] = None
    single: Optional[Dict[int, ThreeValuedStructure]] = None
    frontier: Tuple[int, ...] = ()


@dataclass
class TvlaResult:
    report: CertificationReport
    iterations: int
    max_structures: int
    #: per-(action, canonical-key) transfer memoization counters
    transfer_hits: int = 0
    transfer_misses: int = 0
    #: the fixpoint annotation for certificate emission: relational mode
    #: records the per-node structure sets (keyed canonically),
    #: independent mode the single per-node structure
    node_states: Optional[Dict[int, Dict[object, ThreeValuedStructure]]] = None
    node_single: Optional[Dict[int, ThreeValuedStructure]] = None


class TvlaEngine:
    def __init__(
        self,
        tvp: TvpProgram,
        *,
        mode: str = "relational",
        prune_requires: bool = True,
        focus_budget: int = 64,
        structure_budget: int = 4000,
        iteration_budget: int = 200_000,
        worklist: str = "rpo",
        memoize_transfers: bool = True,
        packed: bool = False,
    ) -> None:
        if mode not in ("relational", "independent"):
            raise ValueError(f"unknown mode {mode!r}")
        self.tvp = tvp
        self.mode = mode
        self.prune_requires = prune_requires
        self.focus_budget = focus_budget
        self.structure_budget = structure_budget
        self.iteration_budget = iteration_budget
        self.worklist_order = worklist
        self.memoize_transfers = memoize_transfers
        self.packed = packed
        self.abstraction_preds = tvp.abstraction_predicates()
        #: (action identity, input canonical key) ->
        #: ([(output key, output structure)], alarm contributions).
        #: Persistent across runs: a session certifying many clients
        #: against one specialized TVP replays recorded transfers (and
        #: their alarm contributions) instead of re-running
        #: focus / checks / update / coerce.
        self._transfers: Dict[
            Tuple[int, object],
            Tuple[
                List[Tuple[object, ThreeValuedStructure]],
                Dict[Tuple[int, str], _CheckContribution],
            ],
        ] = {}
        #: update-stmt identity -> (compiled plane or None, outer slot
        #: bindings); update objects live as long as the tvp, so id()
        #: keys stay valid for the engine's lifetime
        self._packed_update_plane: Dict[int, tuple] = {}

    # -- initial state -------------------------------------------------------------------

    def initial_structure(self) -> ThreeValuedStructure:
        if self.packed:
            structure: ThreeValuedStructure = packed_kernel.PackedStructure()
        else:
            structure = ThreeValuedStructure()
        for pred in getattr(self.tvp, "initially_true_nullary", []):
            structure.set(pred, (), TRUE3)
        return structure

    # -- focus ----------------------------------------------------------------------------

    def _focus_one(
        self, structure: ThreeValuedStructure, pred: str
    ) -> List[ThreeValuedStructure]:
        """Make the unary ``pred`` definite on every individual."""
        pending = [structure]
        finished: List[ThreeValuedStructure] = []
        while pending:
            current = pending.pop()
            half_node = next(
                (
                    n
                    for n in current.nodes
                    if current.get(pred, (n,)) is HALF
                ),
                None,
            )
            if half_node is None:
                finished.append(current)
                continue
            if (
                len(finished) + len(pending) >= self.focus_budget
            ):  # give up focusing: keep the indefinite structure
                finished.append(current)
                continue
            positive = current.copy()
            positive.set(pred, (half_node,), TRUE3)
            negative = current.copy()
            negative.set(pred, (half_node,), FALSE3)
            pending.extend([positive, negative])
            if current.summary.get(half_node, False):
                split = current.copy()
                clone = split.duplicate_node(half_node)
                split.set(pred, (half_node,), TRUE3)
                split.set(pred, (clone,), FALSE3)
                pending.append(split)
        return finished

    def _focus(
        self, structure: ThreeValuedStructure, action: Action
    ) -> List[ThreeValuedStructure]:
        if self.mode != "relational":
            return [structure]
        structures = [structure]
        for formula in action.focus:
            if not isinstance(formula, PredAtom) or len(formula.args) != 1:
                continue  # only unary focus is implemented
            next_round: List[ThreeValuedStructure] = []
            for s in structures:
                next_round.extend(self._focus_one(s, formula.name))
            structures = next_round
        return structures

    # -- one action -----------------------------------------------------------------------

    def apply(
        self,
        structure: ThreeValuedStructure,
        action: Action,
        alarm_sink: Optional[Dict[Tuple[int, str], _CheckContribution]],
    ) -> List[ThreeValuedStructure]:
        results: List[ThreeValuedStructure] = []
        for focused in self._focus(structure, action):
            survivor = self._check(focused, action, alarm_sink)
            if survivor is None:
                continue
            results.append(self._update(survivor, action))
        return results

    def _check(
        self,
        structure: ThreeValuedStructure,
        action: Action,
        alarm_sink: Optional[Dict[Tuple[int, str], _CheckContribution]],
    ) -> Optional[ThreeValuedStructure]:
        current = structure
        for check in action.checks:
            value = current.eval(check.cond)
            if alarm_sink is not None:
                # record *every* evaluation, passing ones included: an
                # alarm is definite only when no structure reaching the
                # check can pass it
                key = (check.site_id, str(check.cond))
                alarmed = value is not TRUE3
                all_fail = value is FALSE3
                existing = alarm_sink.get(key)
                if existing is None:
                    alarm_sink[key] = _CheckContribution(
                        line=check.line,
                        op_key=check.op_key,
                        instance=str(check.cond),
                        alarmed=alarmed,
                        all_fail=all_fail,
                    )
                else:
                    existing.merge(alarmed, all_fail)
            if value is TRUE3:
                continue
            if value is FALSE3 and self.prune_requires:
                return None  # the exception definitely fires
            if self.prune_requires and isinstance(check.cond, Not):
                body = check.cond.body
                if isinstance(body, PredAtom) and not body.args:
                    current = current.copy()
                    current.set(body.name, (), FALSE3)
        return current

    def _update(
        self, structure: ThreeValuedStructure, action: Action
    ) -> ThreeValuedStructure:
        pre = structure
        post = structure.copy()
        env: Dict[str, int] = {}
        if action.new_var is not None:
            node = post.new_node(summary=False)
            env[action.new_var] = node
            # the new node does not exist in the pre-state; evaluate rhs
            # formulas in the post-universe minus predicate changes, so
            # re-point `pre` at a copy that has the node with all-0 values
            pre = post.copy()
        for update in action.updates:
            if not update.vars:
                post.set(update.pred, (), pre.eval(update.rhs, env))
                continue
            if not formula_compile.compilation_enabled():
                compiled = None
            elif pre.packed:
                entry = self._packed_update_plane.get(id(update))
                if entry is None:
                    plane = packed_kernel.compile_update_plane(
                        update.rhs, tuple(update.vars)
                    )
                    if plane is None:
                        entry = (None, ())
                    else:
                        var_set = set(update.vars)
                        entry = (
                            plane,
                            tuple(
                                (slot, name)
                                for slot, name in enumerate(plane.free_vars)
                                if name not in var_set
                            ),
                        )
                    self._packed_update_plane[id(update)] = entry
                plane, outer = entry
                if plane is not None:
                    # bulk bitwise transfer: one plane evaluation
                    # replaces len(nodes) ** arity per-tuple closures
                    slots = [0] * plane.num_slots
                    for slot, name in outer:
                        slots[slot] = env[name]
                    t, h = packed_kernel.evaluate_update_plane(
                        pre, plane, slots
                    )
                    post.set_plane(update.pred, len(update.vars), t, h)
                    continue
                compiled = packed_kernel.compile_packed_formula(update.rhs)
            else:
                compiled = formula_compile.compile_formula(update.rhs)
            assignments = _tuples(pre.nodes, len(update.vars))
            values = []
            if compiled is None:
                for combo in assignments:
                    local_env = dict(env)
                    local_env.update(zip(update.vars, combo))
                    values.append((combo, pre.eval(update.rhs, local_env)))
            else:
                # bind free variables straight into positional slots —
                # no per-tuple env dict; binder slots are written by fn
                fn = compiled.fn
                slots = [0] * compiled.num_slots
                var_pos = {name: i for i, name in enumerate(update.vars)}
                fills = []
                for slot, name in enumerate(compiled.free_vars):
                    if name in var_pos:
                        fills.append((slot, var_pos[name]))
                    else:
                        slots[slot] = env[name]
                for combo in assignments:
                    for slot, pos in fills:
                        slots[slot] = combo[pos]
                    values.append((combo, fn(pre, slots)))
            for combo, value in values:
                post.set(update.pred, combo, value)
        return post.canonicalize(self.abstraction_preds)

    # -- the fixpoint ----------------------------------------------------------------------

    def run(
        self,
        governor: Optional[ResourceGovernor] = None,
        seed: Optional[TvlaSeed] = None,
    ) -> TvlaResult:
        with trace_phase(
            "fixpoint", engine=f"tvla-{self.mode}"
        ) as trace_meta:
            result = self._run(governor, seed)
            trace_meta.update(
                iterations=result.iterations,
                max_structures=result.max_structures,
            )
        return result

    def _successors(self, node: int) -> List[int]:
        return [edge.dst for edge in self.tvp.out_edges(node)]

    def _replay_checks(
        self,
        states: Dict[int, Dict[object, ThreeValuedStructure]],
        single: Dict[int, ThreeValuedStructure],
    ) -> Dict[Tuple[int, str], _CheckContribution]:
        """Evaluate every check edge over the final states (focus + check
        only — updates cannot touch the alarm sink), exactly what the
        independent checker's alarm-entailment pass does."""
        alarms: Dict[Tuple[int, str], _CheckContribution] = {}
        for edge in self.tvp.edges:
            if not edge.action.checks:
                continue
            if self.mode == "relational":
                for structure in states.get(edge.src, {}).values():
                    for focused in self._focus(structure, edge.action):
                        self._check(focused, edge.action, alarms)
            else:
                current = single.get(edge.src)
                if current is not None:
                    self._check(current, edge.action, alarms)
        return alarms

    def _run(
        self,
        governor: Optional[ResourceGovernor] = None,
        seed: Optional[TvlaSeed] = None,
    ) -> TvlaResult:
        started = time.perf_counter()
        alarms: Dict[Tuple[int, str], _CheckContribution] = {}
        preds = self.abstraction_preds
        initial = self.initial_structure().canonicalize(preds)
        iterations = 0
        max_structures = 1
        transfer_hits = 0
        transfer_misses = 0
        worklist = make_worklist(
            self.worklist_order, self.tvp.entry, self._successors
        )
        if seed is None:
            worklist.push(self.tvp.entry)
        else:
            for node in seed.frontier:
                worklist.push(node)
        states: Dict[int, Dict[object, ThreeValuedStructure]] = {}
        single: Dict[int, ThreeValuedStructure] = {}
        try:
            if self.mode == "relational":
                if seed is None:
                    states = {
                        self.tvp.entry: {
                            initial.canonical_key(preds): initial
                        }
                    }
                else:
                    states = {
                        node: dict(bucket)
                        for node, bucket in (seed.states or {}).items()
                    }
                    if self.tvp.entry not in states:
                        # dirty entry: it contributes the initial state
                        states[self.tvp.entry] = {
                            initial.canonical_key(preds): initial
                        }
                        worklist.push(self.tvp.entry)
                # isomorphic structures share a canonical key, so a
                # revisited (action, structure) pair — within this run
                # or a later one — skips focus / checks / update /
                # coerce and replays its recorded alarm contributions
                # instead
                transfers = self._transfers
                while worklist:
                    if governor is not None:
                        governor.tick()
                    iterations += 1
                    if iterations > self.iteration_budget:
                        raise TvlaBudgetExceeded(
                            "iteration budget exceeded"
                        )
                    node = worklist.pop()
                    here = list(states.get(node, {}).items())
                    for edge in self.tvp.out_edges(node):
                        action_id = id(edge.action)
                        for skey, structure in here:
                            cached = (
                                transfers.get((action_id, skey))
                                if self.memoize_transfers
                                else None
                            )
                            if cached is None:
                                transfer_misses += 1
                                local: Dict[
                                    Tuple[int, str], _CheckContribution
                                ] = {}
                                cached = (
                                    [
                                        (out.canonical_key(preds), out)
                                        for out in self.apply(
                                            structure, edge.action, local
                                        )
                                    ],
                                    local,
                                )
                                if self.memoize_transfers:
                                    transfers[(action_id, skey)] = cached
                            else:
                                transfer_hits += 1
                            outs, contribs = cached
                            # merge recorded contributions: `alarmed` ORs
                            # and `all_fail` ANDs over every contribution
                            # at a site, so the replay is idempotent and
                            # order-independent
                            for akey, contrib in contribs.items():
                                existing = alarms.get(akey)
                                if existing is None:
                                    alarms[akey] = _CheckContribution(
                                        line=contrib.line,
                                        op_key=contrib.op_key,
                                        instance=contrib.instance,
                                        alarmed=contrib.alarmed,
                                        all_fail=contrib.all_fail,
                                    )
                                else:
                                    existing.merge(
                                        contrib.alarmed, contrib.all_fail
                                    )
                            bucket = states.setdefault(edge.dst, {})
                            changed = False
                            for okey, out in outs:
                                if okey in bucket:
                                    continue
                                bucket[okey] = out
                                changed = True
                                max_structures = max(
                                    max_structures, len(bucket)
                                )
                                if len(bucket) > self.structure_budget:
                                    raise TvlaBudgetExceeded(
                                        f"more than "
                                        f"{self.structure_budget} "
                                        f"structures at node {edge.dst}",
                                        breach="structures",
                                    )
                                if governor is not None:
                                    governor.check_structures(
                                        len(bucket)
                                    )
                            if changed:
                                worklist.push(edge.dst)
            else:
                if seed is None:
                    single = {self.tvp.entry: initial}
                else:
                    single = dict(seed.single or {})
                    if self.tvp.entry not in single:
                        single[self.tvp.entry] = initial
                        worklist.push(self.tvp.entry)
                while worklist:
                    if governor is not None:
                        governor.tick()
                    iterations += 1
                    if iterations > self.iteration_budget:
                        raise TvlaBudgetExceeded(
                            "iteration budget exceeded"
                        )
                    node = worklist.pop()
                    current = single.get(node)
                    if current is None:
                        continue
                    for edge in self.tvp.out_edges(node):
                        for out in self.apply(
                            current, edge.action, alarms
                        ):
                            old = single.get(edge.dst)
                            if old is None:
                                merged = out
                            else:
                                merged = type(old).join(
                                    old, out, preds
                                ).canonicalize(preds)
                            old_key = (
                                None
                                if old is None
                                else old.canonical_key(preds)
                            )
                            if old_key != merged.canonical_key(preds):
                                single[edge.dst] = merged
                                worklist.push(edge.dst)
        except (ResourceExhausted, MemoryError) as error:
            # salvage: alarm contributions only accumulate (`alarmed`
            # ORs upward), so sites alarmed mid-run stay alarmed in the
            # completed run
            raise _guard.exhausted_from(
                error,
                engine=f"tvla-{self.mode}",
                subject=self.tvp.name,
                alarms=_alarm_list(alarms),
                site_universe=_guard.tvp_sites(self.tvp),
                nodes_analyzed=len(states) or len(single),
                nodes_total=len(self.tvp.nodes()),
                stats={
                    "iterations": iterations,
                    "max_structures": max_structures,
                },
            )
        if seed is not None:
            # a seeded run never applied the clean region's transfers, so
            # its accumulated contributions are partial — recover the
            # cold-run alarm set by a checker-style replay of every check
            # edge over the final states (equal to cold accumulation: see
            # TvlaSeed), and the cold-run structure high-water mark from
            # the final bucket sizes (buckets only grow, so the cold
            # running max is the final max)
            alarms = self._replay_checks(states, single)
            if self.mode == "relational":
                max_structures = max(
                    1, max((len(b) for b in states.values()), default=1)
                )
            else:
                max_structures = 1
        alarm_list = _alarm_list(alarms)
        report = CertificationReport(
            subject=self.tvp.name,
            engine=f"tvla-{self.mode}",
            alarms=alarm_list,
            stats={
                "iterations": iterations,
                "max_structures": max_structures,
                "abstraction_preds": len(preds),
                "transfer_hits": transfer_hits,
                "transfer_misses": transfer_misses,
                "seconds": round(time.perf_counter() - started, 4),
            },
        )
        return TvlaResult(
            report,
            iterations,
            max_structures,
            transfer_hits,
            transfer_misses,
            node_states=states if self.mode == "relational" else None,
            node_single=single if self.mode == "independent" else None,
        )


def _alarm_list(
    alarms: Dict[Tuple[int, str], _CheckContribution],
) -> List[Alarm]:
    return sorted(
        (
            Alarm(
                site_id=site_id,
                line=contrib.line,
                op_key=contrib.op_key,
                instance=contrib.instance,
                definite=contrib.all_fail,
            )
            for (site_id, _cond), contrib in alarms.items()
            if contrib.alarmed
        ),
        key=lambda a: (a.site_id, a.instance),
    )


def _tuples(nodes: List[int], arity: int):
    if arity == 1:
        return [(n,) for n in nodes]
    if arity == 2:
        return [(a, b) for a in nodes for b in nodes]
    raise ValueError(f"unsupported update arity {arity}")
