"""A TVLA-style abstract interpreter for TVP programs (Section 5.5).

States are 3-valued logical structures; canonical abstraction merges
individuals agreeing on all unary *abstraction predicates*, bounding the
universe at ``3^|A|`` as the paper notes.  Two analysis modes mirror the
paper's evaluation:

* **relational** — a set of 3-valued structures per program point
  (deduplicated up to canonical isomorphism), with the focus operation
  materializing individuals so pointer formulas evaluate definitely;
* **independent attribute** — a single structure per point that
  approximates all structures arising there (join merges canonically-
  named individuals and predicate values in the information order).

Section 7's empirically surprising finding — the relational engine has
*no precision advantage* over the independent-attribute engine on the
benchmark clients, thanks to the specialized component abstraction — is
reproduced by experiment E7.
"""

from repro.tvla.engine import TvlaEngine, TvlaResult
from repro.tvla.three_valued import ThreeValuedStructure

__all__ = ["ThreeValuedStructure", "TvlaEngine", "TvlaResult"]
