"""3-valued logical structures (Section 5.5).

A 3-valued structure is ``(U, ι)`` where each predicate maps tuples over
``U`` to a :class:`~repro.logic.kleene.Kleene` value.  Individuals carry a
*summary* bit: a summary individual may represent several concrete
objects, so equality on it evaluates to ``1/2``.

Formula evaluation follows Kleene semantics; canonical abstraction merges
individuals with identical unary abstraction-predicate vectors, joining
predicate values in the information order and marking merged individuals
as summaries.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.logic.formula import (
    And,
    EqAtom,
    Exists,
    Forall,
    Formula,
    Not,
    Or,
    PredAtom,
    Truth,
)
from repro.logic import compile as formula_compile
from repro.logic.kleene import FALSE3, HALF, Kleene, TRUE3, kleene_join
from repro.logic.terms import Base

_EMPTY_TABLE: Dict = {}


class ThreeValuedStructure:
    """A mutable 3-valued structure; sparse (absent tuples are 0)."""

    #: representation marker: the packed kernel
    #: (:class:`repro.logic.packed.PackedStructure`) overrides this so the
    #: engine and compiled-formula layer can dispatch without isinstance
    packed = False

    def __init__(self) -> None:
        self.nodes: List[int] = []
        self.summary: Dict[int, bool] = {}
        self.nullary: Dict[str, Kleene] = {}
        self.unary: Dict[str, Dict[int, Kleene]] = {}
        self.binary: Dict[str, Dict[Tuple[int, int], Kleene]] = {}
        self._next = 0
        #: memoized canonical_key per abstraction-pred tuple; cleared by
        #: every mutation that goes through :meth:`set` / :meth:`new_node`
        #: (callers mutating tables directly must call :meth:`dirty`)
        self._ckey_cache: Dict[Tuple[str, ...], tuple] = {}

    # -- universe ----------------------------------------------------------------

    def dirty(self) -> None:
        """Invalidate memoized canonical keys after a direct mutation."""
        if self._ckey_cache:
            self._ckey_cache = {}

    def new_node(self, summary: bool = False) -> int:
        node = self._next
        self._next += 1
        self.nodes.append(node)
        self.summary[node] = summary
        self.dirty()
        return node

    def copy(self) -> "ThreeValuedStructure":
        clone = ThreeValuedStructure()
        clone.nodes = list(self.nodes)
        clone.summary = dict(self.summary)
        clone.nullary = dict(self.nullary)
        clone.unary = {p: dict(m) for p, m in self.unary.items()}
        clone.binary = {p: dict(m) for p, m in self.binary.items()}
        clone._next = self._next
        return clone

    # -- values ------------------------------------------------------------------

    def get(self, pred: str, args: Tuple[int, ...]) -> Kleene:
        if len(args) == 0:
            return self.nullary.get(pred, FALSE3)
        if len(args) == 1:
            return self.unary.get(pred, {}).get(args[0], FALSE3)
        return self.binary.get(pred, {}).get(args, FALSE3)  # type: ignore[arg-type]

    def set(self, pred: str, args: Tuple[int, ...], value: Kleene) -> None:
        self.dirty()
        if len(args) == 0:
            self.nullary[pred] = value
            return
        if len(args) == 1:
            table = self.unary.setdefault(pred, {})
            if value is FALSE3:
                table.pop(args[0], None)
            else:
                table[args[0]] = value
            return
        table2 = self.binary.setdefault(pred, {})
        if value is FALSE3:
            table2.pop(args, None)  # type: ignore[arg-type]
        else:
            table2[args] = value  # type: ignore[index]

    # -- evaluation -----------------------------------------------------------------

    def eval(self, formula: Formula, env: Optional[Dict[str, int]] = None) -> Kleene:
        if formula_compile.compilation_enabled():
            return formula_compile.evaluate(self, formula, env)
        return self._eval(formula, env or {})

    def _eval(self, formula: Formula, env: Dict[str, int]) -> Kleene:
        if isinstance(formula, Truth):
            return TRUE3 if formula.value else FALSE3
        if isinstance(formula, PredAtom):
            args = tuple(env[a] for a in formula.args)
            return self.get(formula.name, args)
        if isinstance(formula, EqAtom):
            lhs = self._term_node(formula.lhs, env)
            rhs = self._term_node(formula.rhs, env)
            if lhs != rhs:
                return FALSE3
            return HALF if self.summary.get(lhs, False) else TRUE3
        if isinstance(formula, Not):
            return self._eval(formula.body, env).logical_not()
        if isinstance(formula, And):
            result = TRUE3
            for arg in formula.args:
                result = result.logical_and(self._eval(arg, env))
                if result is FALSE3:
                    return result
            return result
        if isinstance(formula, Or):
            result = FALSE3
            for arg in formula.args:
                result = result.logical_or(self._eval(arg, env))
                if result is TRUE3:
                    return result
            return result
        if isinstance(formula, Exists):
            result = FALSE3
            for node in self.nodes:
                value = self._eval(
                    formula.body, {**env, formula.var: node}
                )
                result = result.logical_or(value)
                if result is TRUE3:
                    return result
            return result
        if isinstance(formula, Forall):
            result = TRUE3
            for node in self.nodes:
                value = self._eval(
                    formula.body, {**env, formula.var: node}
                )
                result = result.logical_and(value)
                if result is FALSE3:
                    return result
            return result
        raise TypeError(f"unknown formula node {formula!r}")

    def _term_node(self, term, env: Dict[str, int]) -> int:
        if isinstance(term, Base):
            return env[term.name]
        raise TypeError(
            "3-valued equality supports logical variables only; got "
            f"{term!r}"
        )

    # -- node bifurcation (focus) -------------------------------------------------------

    def duplicate_node(self, node: int) -> int:
        """Bifurcate a summary node: the clone inherits every predicate
        value (including pairs with the original and itself)."""
        clone = self.new_node(summary=True)
        self.dirty()  # tables are mutated directly below
        for table in self.unary.values():
            if node in table:
                table[clone] = table[node]
        for table2 in self.binary.values():
            for (n1, n2), value in list(table2.items()):
                if n1 == node and n2 == node:
                    table2[(clone, clone)] = value
                    table2[(clone, node)] = value
                    table2[(node, clone)] = value
                elif n1 == node:
                    table2[(clone, n2)] = value
                elif n2 == node:
                    table2[(n1, clone)] = value
        return clone

    # -- canonical abstraction ----------------------------------------------------------

    def canonical_vector(
        self, node: int, abstraction_preds: List[str]
    ) -> Tuple[Kleene, ...]:
        unary = self.unary
        return tuple(
            unary.get(p, _EMPTY_TABLE).get(node, FALSE3)
            for p in abstraction_preds
        )

    def canonicalize(
        self, abstraction_preds: List[str]
    ) -> "ThreeValuedStructure":
        """Merge individuals with identical abstraction vectors.

        Sparse: predicate tables are folded entry-by-entry; absent
        tuples contribute an implicit 0, accounted for by comparing the
        number of folded entries against the size of each merged block.
        """
        groups: Dict[Tuple[Kleene, ...], List[int]] = {}
        for node in self.nodes:
            groups.setdefault(
                self.canonical_vector(node, abstraction_preds), []
            ).append(node)
        if len(groups) == len(self.nodes):
            return self  # every vector distinct: already canonical
        result = ThreeValuedStructure()
        mapping: Dict[int, int] = {}
        group_size: Dict[int, int] = {}
        for vector in sorted(
            groups, key=lambda vec: tuple(v._value_ for v in vec)
        ):
            members = groups[vector]
            merged_summary = len(members) > 1 or any(
                self.summary[m] for m in members
            )
            new = result.new_node(merged_summary)
            group_size[new] = len(members)
            for member in members:
                mapping[member] = new
        for pred, value in self.nullary.items():
            result.nullary[pred] = value
        for pred, table in self.unary.items():
            folded: Dict[int, Kleene] = {}
            counts: Dict[int, int] = {}
            for node, value in table.items():
                new = mapping[node]
                prior = folded.get(new)
                folded[new] = value if prior is None else prior.join(value)
                counts[new] = counts.get(new, 0) + 1
            out = {}
            for new, value in folded.items():
                if counts[new] < group_size[new]:
                    value = value.join(FALSE3)  # an implicit-0 member
                if value is not FALSE3:
                    out[new] = value
            if out:
                result.unary[pred] = out
        for pred, table in self.binary.items():
            folded2: Dict[Tuple[int, int], Kleene] = {}
            counts2: Dict[Tuple[int, int], int] = {}
            for (n1, n2), value in table.items():
                key = (mapping[n1], mapping[n2])
                prior = folded2.get(key)
                folded2[key] = (
                    value if prior is None else prior.join(value)
                )
                counts2[key] = counts2.get(key, 0) + 1
            out2 = {}
            for key, value in folded2.items():
                if counts2[key] < group_size[key[0]] * group_size[key[1]]:
                    value = value.join(FALSE3)
                if value is not FALSE3:
                    out2[key] = value
            if out2:
                result.binary[pred] = out2
        return result

    # -- canonical naming / comparison ------------------------------------------------------

    def canonical_key(self, abstraction_preds: List[str]):
        """A hashable key identifying the structure up to renaming of
        individuals with distinct abstraction vectors.  Structures must be
        canonicalized first (one individual per vector).

        Memoized per abstraction-pred tuple; mutations through
        :meth:`set` / :meth:`new_node` invalidate the cache."""
        cache_key = tuple(abstraction_preds)
        cached = self._ckey_cache.get(cache_key)
        if cached is not None:
            return cached
        key = self._canonical_key(abstraction_preds)
        self._ckey_cache[cache_key] = key
        return key

    def _canonical_key(self, abstraction_preds: List[str]):
        order = sorted(
            self.nodes,
            key=lambda n: (
                tuple(
                    v._value_
                    for v in self.canonical_vector(n, abstraction_preds)
                ),
                self.summary[n],
            ),
        )
        index = {node: i for i, node in enumerate(order)}
        unary_part = frozenset(
            (pred, index[node], value._value_)
            for pred, table in self.unary.items()
            for node, value in table.items()
            if value is not FALSE3
        )
        binary_part = frozenset(
            (pred, index[n1], index[n2], value._value_)
            for pred, table in self.binary.items()
            for (n1, n2), value in table.items()
            if value is not FALSE3
        )
        nullary_part = frozenset(
            (pred, value._value_)
            for pred, value in self.nullary.items()
            if value is not FALSE3
        )
        summary_part = frozenset(
            (index[n], s) for n, s in self.summary.items()
        )
        return (nullary_part, unary_part, binary_part, summary_part)

    # -- join (independent-attribute mode) ------------------------------------------------------

    @staticmethod
    def join(
        a: "ThreeValuedStructure",
        b: "ThreeValuedStructure",
        abstraction_preds: List[str],
    ) -> "ThreeValuedStructure":
        """Information-order join of two canonicalized structures: nodes
        with equal abstraction vectors merge; unmatched nodes are kept.

        The result over-approximates both inputs for the may-queries the
        certifier asks (existentials and nullary reads); this is the
        single-structure "independent attribute" mode of Section 5.5."""
        result = ThreeValuedStructure()
        mapping_a: Dict[int, int] = {}
        mapping_b: Dict[int, int] = {}
        vectors_a = {
            n: a.canonical_vector(n, abstraction_preds) for n in a.nodes
        }
        vectors_b = {
            n: b.canonical_vector(n, abstraction_preds) for n in b.nodes
        }
        by_vector_b: Dict[Tuple[Kleene, ...], int] = {}
        for n, vector in vectors_b.items():
            by_vector_b.setdefault(vector, n)
        matched_b = set()
        for n, vector in sorted(
            vectors_a.items(),
            key=lambda kv: tuple(v._value_ for v in kv[1]),
        ):
            partner = by_vector_b.get(vector)
            if partner is not None and partner not in matched_b:
                matched_b.add(partner)
                new = result.new_node(
                    a.summary[n] or b.summary[partner]
                )
                mapping_a[n] = new
                mapping_b[partner] = new
            else:
                new = result.new_node(a.summary[n])
                mapping_a[n] = new
        for n in b.nodes:
            if n not in mapping_b:
                mapping_b[n] = result.new_node(b.summary[n])
        inverse_a = {new: old for old, new in mapping_a.items()}
        inverse_b = {new: old for old, new in mapping_b.items()}
        for pred in set(a.nullary) | set(b.nullary):
            result.nullary[pred] = a.nullary.get(pred, FALSE3).join(
                b.nullary.get(pred, FALSE3)
            )
        for pred in set(a.unary) | set(b.unary):
            table = result.unary.setdefault(pred, {})
            for node in result.nodes:
                values = []
                if node in inverse_a:
                    values.append(a.get(pred, (inverse_a[node],)))
                if node in inverse_b:
                    values.append(b.get(pred, (inverse_b[node],)))
                value = kleene_join(values)
                if value is not FALSE3:
                    table[node] = value
        for pred in set(a.binary) | set(b.binary):
            table2 = result.binary.setdefault(pred, {})
            for n1 in result.nodes:
                for n2 in result.nodes:
                    values = []
                    if n1 in inverse_a and n2 in inverse_a:
                        values.append(
                            a.get(pred, (inverse_a[n1], inverse_a[n2]))
                        )
                    if n1 in inverse_b and n2 in inverse_b:
                        values.append(
                            b.get(pred, (inverse_b[n1], inverse_b[n2]))
                        )
                    if values:
                        value = kleene_join(values)
                        if value is not FALSE3:
                            table2[(n1, n2)] = value
        return result

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        parts = [f"U={[(n, 'sm' if self.summary[n] else '') for n in self.nodes]}"]
        for pred, value in sorted(self.nullary.items()):
            if value is not FALSE3:
                parts.append(f"{pred}={value}")
        for pred, table in sorted(self.unary.items()):
            if table:
                parts.append(f"{pred}={dict(table)}")
        for pred, table in sorted(self.binary.items()):
            if table:
                parts.append(f"{pred}={dict(table)}")
        return "TVS(" + "; ".join(parts) + ")"
