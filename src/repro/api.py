"""High-level facade over the staged-certification pipeline.

The paper's workflow in three calls::

    spec = cmp_spec()                        # the component author's Easl spec
    session = CertifySession(spec)           # certifier-generation time
    report = session.certify(client_source)  # certify a client

:class:`CertifySession` is the primary API: it owns the expensive
per-specification state — the derived abstraction and inlining results —
in *bounded*, stats-reporting LRU caches, so the staging amortization of
Section 1.3 (derive once, certify many clients) is explicit rather than
hidden in module-global state.  ``certify_many`` certifies a batch of
clients against the same spec; the batch runtime
(:mod:`repro.runtime.batch`) runs one session per worker job.

:func:`certify_source` / :func:`certify_program` remain as the **legacy
path**: thin wrappers that delegate to a session backed by a shared
module-level cache.  New code should construct a session.

Engines (``session.certify(...)`` or the wrappers pick one):

========================  =====================================================
engine                    what runs
========================  =====================================================
``"auto"``                interproc for shallow clients, TVLA otherwise
``"fds"``                 intraprocedural FDS on the inlined program (§4.3)
``"relational"``          relational solver on the inlined program
``"interproc"``           the §8 summary-based context-sensitive solver
``"tvla-relational"``     specialized first-order abstraction + TVLA (§5)
``"tvla-independent"``    same, independent-attribute mode
``"allocsite"``           generic baseline: allocation-site points-to (§3)
``"allocsite-recency"``   generic baseline with recency (ablation)
``"shapegraph"``          generic baseline: storage shape graphs (§3, Fig. 7)
========================  =====================================================
"""

from __future__ import annotations

import contextlib
import os
import warnings
from dataclasses import dataclass
from typing import (
    Iterable,
    Iterator,
    List,
    Optional,
    Sequence,
    Tuple,
    Union,
)

from repro.certifier.fds import certify_fds
from repro.certifier.interproc import InterproceduralCertifier
from repro.certifier.relational import certify_relational
from repro.certifier.report import CertificationReport
from repro.certifier.transform import ClientTransformer, TransformError
from repro.derivation import DerivedAbstraction, derive
from repro.easl.spec import ComponentSpec
from repro.generic_analysis import (
    AllocSiteDomain,
    ShapeGraphDomain,
    analyze_generic,
)
from repro.lang.inline import InlinedProgram, inline_program
from repro.lang.types import Program, parse_program
from repro.logic import compile as formula_compile
from repro.logic import packed as packed_kernel
from repro.runtime.cache import CacheStats, LRUCache, stable_key
from repro.runtime.guard import (
    DegradationLadder,
    ResourceExhausted,
    ResourceGovernor,
    SiteLedger,
)
from repro.runtime.trace import (
    Tracer,
    current_tracer,
    note,
    phase,
    use_tracer,
)
from repro.tvla.engine import TvlaEngine
from repro.tvp.specialize import specialized_translation

ENGINES = (
    "auto",
    "fds",
    "relational",
    "interproc",
    "tvla-relational",
    "tvla-independent",
    "allocsite",
    "allocsite-recency",
    "shapegraph",
)

#: default bound for per-session (and the legacy module-level) caches
DEFAULT_CACHE_SIZE = 64

#: the legacy shared abstraction cache — bounded LRU, not a bare dict
_ABSTRACTION_CACHE = LRUCache(DEFAULT_CACHE_SIZE, name="abstractions")


def _identity_memo(cache: LRUCache, obj, extra, factory):
    """Memoize ``factory()`` per (object identity, extra key).

    Entries store the keyed object; a hit requires the stored object to
    *be* the argument, so a recycled ``id`` after garbage collection can
    never return a stale value.
    """
    key = (id(obj), extra)
    entry = cache.get(key)
    if entry is not None and entry[0] is obj:
        return entry[1]
    value = factory()
    cache.put(key, (obj, value))
    return value


def abstraction_cache_stats() -> CacheStats:
    """Counters for the shared (legacy-path) abstraction cache."""
    return _ABSTRACTION_CACHE.stats()


def _abstraction_key(
    spec_name: str, identity_families: bool, kwargs: dict
) -> tuple:
    # stable_key normalizes unhashable kwarg values (lists, dicts, ...)
    # instead of letting the cache lookup raise TypeError.
    return (spec_name, bool(identity_families), stable_key(kwargs))


def _cached_abstraction(
    cache: LRUCache,
    spec: ComponentSpec,
    identity_families: bool,
    kwargs: dict,
) -> DerivedAbstraction:
    key = _abstraction_key(spec.name, identity_families, kwargs)
    ran = False

    def factory() -> DerivedAbstraction:
        nonlocal ran
        ran = True
        return derive(spec, identity_families=identity_families, **kwargs)

    # On a miss, derive() emits the authoritative "derive" event itself;
    # on a hit, emit a near-zero "derive" event marked cached so every
    # certification job still shows the full phase sequence.
    with phase("derive", spec=spec.name) as meta:
        value = cache.get_or_create(key, factory)
        meta["cached"] = not ran
        if ran:
            meta["families"] = value.stats.families
    return value


@dataclass(frozen=True)
class CertifyOptions:
    """Client-side knobs shared by every engine.

    ``entry``
        entry method (default: the program's ``main``);
    ``prune_requires``
        assume a passing ``requires`` afterwards (the A2 ablation
        toggles this off);
    ``inline_depth``
        recursion cut-off for the whole-program inliner;
    ``worklist``
        fixpoint scheduling: ``"rpo"`` (reverse-postorder priority,
        the default) or ``"fifo"`` (the seed behaviour);
    ``compiled_eval``
        evaluate TVLA formulas through the closure compiler
        (:mod:`repro.logic.compile`) instead of the recursive
        interpreter;
    ``memoize_transfers``
        cache TVLA transfer results per (action, canonical-key) so
        revisited structures skip focus/update/coerce;
    ``packed``
        run the TVLA engines over the packed bitset state kernel
        (:mod:`repro.logic.packed`) instead of dict-of-tuples
        structures.  ``None`` (the default) defers to the
        ``REPRO_PACKED`` environment variable; alarm sets and emitted
        certificates are byte-identical either way.

    Resource governance (see :mod:`repro.runtime.guard`):

    ``deadline``
        wall-clock seconds for one certification (the whole ladder);
    ``max_steps``
        fixpoint-iteration budget per engine run;
    ``max_structures``
        abstract-structure/state-count budget per engine run;
    ``ladder``
        what to do when a budget breaches: ``None``/``False`` re-raise
        :class:`~repro.runtime.guard.ResourceExhausted`; ``True`` retries
        the unknown residue down the engine's default degradation tail;
        a tuple of engine names is an explicit ladder.

    Certificates (see :mod:`repro.cert`):

    ``emit_certificate``
        record the post-fixpoint per-node abstract states into a
        :class:`~repro.cert.ConformanceCertificate` attached to
        ``report.certificate``.  Requires certifying from source text
        (:meth:`CertifySession.certify`), since the certificate embeds
        the client source it proves something about.
    """

    entry: Optional[str] = None
    prune_requires: bool = True
    inline_depth: int = 12
    worklist: str = "rpo"
    compiled_eval: bool = True
    memoize_transfers: bool = True
    deadline: Optional[float] = None
    max_steps: Optional[int] = None
    max_structures: Optional[int] = None
    ladder: Union[None, bool, Tuple[str, ...]] = None
    emit_certificate: bool = False
    packed: Optional[bool] = None
    #: parent :class:`~repro.cert.ConformanceCertificate` to recertify
    #: incrementally from (see :mod:`repro.incr`).  Deliberately *not*
    #: part of the recorded options payload or the fingerprint: an
    #: incremental run's certificate is byte-identical to the cold one,
    #: so the parent is an execution strategy, not a semantic option.
    incremental_from: Optional[object] = None
    #: path to a persistent interprocedural summary database
    #: (:class:`repro.store.summary.SummaryStore`): ``interproc``
    #: certifications load procedure summaries from it (behind a linear
    #: validity re-check) and persist freshly computed ones.  Like
    #: ``incremental_from``, deliberately *not* part of the recorded
    #: options payload or the fingerprint — a warm run's certificate is
    #: byte-identical to the cold one, so the database is an execution
    #: strategy, not a semantic option.
    summary_db: Optional[str] = None


def packed_enabled(options: Optional[CertifyOptions] = None) -> bool:
    """Whether the packed state kernel is active for these options.

    An explicit ``CertifyOptions(packed=...)`` wins; otherwise the
    ``REPRO_PACKED`` environment variable decides (default: off)."""
    if options is not None and options.packed is not None:
        return bool(options.packed)
    return os.environ.get("REPRO_PACKED", "") in ("1", "true", "yes")


class CertifySession:
    """Reusable certification context for one component specification.

    A session makes spec-level reuse explicit: the derived abstraction
    is computed once per (session, derivation-parameter) combination and
    inlining results are memoized per source, both in bounded LRU caches
    whose counters :meth:`cache_stats` reports.

    ::

        session = CertifySession(
            cmp_spec(),
            engine="auto",
            options=CertifyOptions(prune_requires=True, inline_depth=12),
        )
        report = session.certify(source)
        reports = session.certify_many(sources)

    A ``tracer`` (see :mod:`repro.runtime.trace`) receives per-phase
    events for every certification run through the session; by default
    the session inherits whatever tracer is ambient.
    """

    def __init__(
        self,
        spec: ComponentSpec,
        engine: str = "auto",
        options: Optional[CertifyOptions] = None,
        *,
        tracer: Optional[Tracer] = None,
        cache: Optional[LRUCache] = None,
        cache_size: int = DEFAULT_CACHE_SIZE,
    ) -> None:
        if engine not in ENGINES:
            raise ValueError(
                f"unknown engine {engine!r}; pick one of {ENGINES}"
            )
        self.spec = spec
        self.engine = engine
        self.options = options or CertifyOptions()
        self._tracer = tracer
        self._abstractions = (
            cache
            if cache is not None
            else LRUCache(cache_size, name=f"abstractions[{spec.name}]")
        )
        self._inlined = LRUCache(cache_size, name=f"inlined[{spec.name}]")
        #: identity-keyed memos: certify_program is called repeatedly
        #: with the same parsed Program (the bench harness runs every
        #: engine over one parse), so inlining and TVP translation are
        #: amortized per object.  Entries carry the keyed object and are
        #: verified by identity, so id reuse can never alias.
        self._inlined_by_obj = LRUCache(
            cache_size, name=f"inlined-by-obj[{spec.name}]"
        )
        self._tvp_by_obj = LRUCache(
            cache_size, name=f"tvp-by-obj[{spec.name}]"
        )
        #: TVLA engines are kept per (TVP, engine options): the
        #: per-(action, canonical-key) transfer memo lives on the
        #: engine, so repeated certifications replay recorded transfers
        self._engine_by_obj = LRUCache(
            cache_size, name=f"tvla-engine-by-obj[{spec.name}]"
        )
        #: lazily opened persistent summary database (options.summary_db)
        self._summary_db_obj = None

    def _summary_store(self):
        """The session's persistent summary database, or None.

        Opened lazily from ``options.summary_db`` and shared by every
        interproc certification in the session.  The write-ahead journal
        is replayed on first open, so a database torn by a crashed
        sibling is repaired (torn objects quarantined) before any
        summary is served from it.
        """
        path = self.options.summary_db
        if path is None:
            return None
        if (
            self._summary_db_obj is None
            or self._summary_db_obj.root != path
        ):
            from repro.store.summary import SummaryStore

            store = SummaryStore(path)
            store.recover()
            self._summary_db_obj = store
        return self._summary_db_obj

    # -- traced execution ------------------------------------------------------

    @contextlib.contextmanager
    def _activated(self) -> Iterator[Tracer]:
        """Install the session tracer; inherit the ambient one if unset."""
        if self._tracer is None:
            yield current_tracer()
        else:
            with use_tracer(self._tracer) as tracer:
                yield tracer

    # -- cached building blocks ------------------------------------------------

    def abstraction(
        self, *, identity_families: bool = False, **kwargs
    ) -> DerivedAbstraction:
        """The session's derived abstraction (cached per parameters)."""
        with self._activated():
            return _cached_abstraction(
                self._abstractions, self.spec, identity_families, kwargs
            )

    def prewarm(self, engines: Sequence[str] = ("auto",)) -> None:
        """Derive every abstraction flavour the given engines may need.

        The batch runtime calls this in the parent before forking its
        worker pool, so workers inherit a warm cache.
        """
        flavours = set()
        for engine in engines:
            if engine in ("auto", "interproc"):
                flavours.add(True)
            if engine != "interproc":
                flavours.add(False)
        for identity in sorted(flavours):
            self.abstraction(identity_families=identity)

    def _inline(self, program: Program, source_key=None) -> InlinedProgram:
        options = self.options
        if source_key is None:
            return _identity_memo(
                self._inlined_by_obj,
                program,
                (options.entry, options.inline_depth),
                lambda: inline_program(
                    program, options.entry, max_depth=options.inline_depth
                ),
            )
        key = (source_key, options.entry, options.inline_depth)
        return self._inlined.get_or_create(
            key,
            lambda: inline_program(
                program, options.entry, max_depth=options.inline_depth
            ),
        )

    def _specialize_tvp(self, inlined: InlinedProgram, abstraction):
        """Memoized specialized translation (per inlined program).

        Action formulas are precompiled here, at specialize time, so a
        first ("cold") certification does not pay formula compilation
        inside the fixpoint — compiled closures live in process-wide
        caches keyed by interned formula and are shared by every engine
        constructed over this TVP.
        """
        packed = packed_enabled(self.options)

        def build():
            tvp = specialized_translation(inlined, abstraction)
            packed_kernel.precompile_tvp(tvp, packed=packed)
            return tvp

        return _identity_memo(
            self._tvp_by_obj, inlined, id(abstraction), build
        )

    # -- certification ---------------------------------------------------------

    def certify(
        self,
        source: str,
        engine: Optional[str] = None,
        *,
        governor: Optional[ResourceGovernor] = None,
        incremental_from: Optional[object] = None,
    ) -> CertificationReport:
        """Parse a Jlite client and certify it against the session spec.

        ``incremental_from`` (or ``options.incremental_from``) names a
        parent certificate to seed the fixpoint from (:mod:`repro.incr`);
        when the parent is unusable — different engine or options, a
        changed variable universe, a tampered payload — the session
        silently falls back to full certification, so the result is the
        same either way (byte-identically so, when emitting).
        """
        parent = (
            incremental_from
            if incremental_from is not None
            else self.options.incremental_from
        )
        with self._activated():
            with phase("parse", spec=self.spec.name) as meta:
                program = parse_program(source, self.spec)
                meta["methods"] = len(program.methods)
            if parent is not None:
                from repro.incr import recertify

                report = recertify(
                    self, program, source, engine, parent, governor=governor
                )
                if report is not None:
                    return report
            return self._dispatch(
                program, engine, source_key=source, governor=governor
            )

    def certify_many(
        self, sources: Iterable[str], engine: Optional[str] = None
    ) -> List[CertificationReport]:
        """Certify several clients, reusing the session's abstraction.

        For pool-parallel execution with timeouts and fallbacks, use
        :class:`repro.runtime.batch.BatchRunner` instead.
        """
        return [self.certify(source, engine) for source in sources]

    def certify_program(
        self,
        program: Program,
        engine: Optional[str] = None,
        *,
        governor: Optional[ResourceGovernor] = None,
    ) -> CertificationReport:
        """Certify an already-parsed client."""
        if program.spec is not self.spec and program.spec.name != self.spec.name:
            raise ValueError(
                f"program was parsed against spec {program.spec.name!r}, "
                f"session is for {self.spec.name!r}"
            )
        with self._activated():
            return self._dispatch(
                program, engine, source_key=None, governor=governor
            )

    # -- engine dispatch -------------------------------------------------------

    def _make_governor(self) -> Optional[ResourceGovernor]:
        """A governor from the session options (None if no budget set)."""
        options = self.options
        if (
            options.deadline is None
            and options.max_steps is None
            and options.max_structures is None
        ):
            return None
        return ResourceGovernor(
            deadline=options.deadline,
            max_steps=options.max_steps,
            max_structures=options.max_structures,
        )

    def _dispatch(
        self,
        program: Program,
        engine: Optional[str],
        source_key,
        governor: Optional[ResourceGovernor] = None,
    ) -> CertificationReport:
        engine = engine or self.engine
        if engine == "auto":
            engine = "interproc" if program.is_shallow() else "tvla-relational"
        if engine not in ENGINES:
            raise ValueError(
                f"unknown engine {engine!r}; pick one of {ENGINES}"
            )
        if governor is None:
            governor = self._make_governor()
        ladder = DegradationLadder.from_option(self.options.ladder, engine)
        if ladder is not None:
            for rung in ladder.rungs_from(engine):
                if rung not in ENGINES or rung == "auto":
                    raise ValueError(
                        f"unknown ladder rung {rung!r}; "
                        f"pick concrete engines from {ENGINES}"
                    )
        try:
            return self._run_engine(program, engine, source_key, governor)
        except ResourceExhausted as error:
            note(
                "breach",
                engine=engine,
                subject=(
                    error.partial.subject
                    if error.partial is not None
                    else self.spec.name
                ),
                breach=error.breach,
                message=str(error),
            )
            if ladder is None or error.partial is None:
                raise
            return self._degrade(
                program, engine, source_key, governor, ladder, error
            )

    def _degrade(
        self,
        program: Program,
        engine: str,
        source_key,
        governor: Optional[ResourceGovernor],
        ladder: DegradationLadder,
        error: ResourceExhausted,
    ) -> CertificationReport:
        """Re-run the unknown residue down the ladder, merging per site."""
        partial = error.partial
        assert partial is not None
        ledger = SiteLedger(partial.unknown_sites)
        salvaged = ledger.absorb_partial(partial)
        note(
            "salvage",
            engine=engine,
            subject=partial.subject,
            sites=salvaged,
            breach=error.breach,
        )
        attempted: List[str] = []
        completed: Optional[str] = None
        for rung in ladder.rungs_from(engine)[1:]:
            if not ledger.unresolved():
                break  # every site already resolved by salvaged alarms
            attempted.append(rung)
            note(
                "degrade",
                engine=engine,
                subject=partial.subject,
                to=rung,
                open_sites=len(ledger.unresolved()),
            )
            rung_governor = (
                governor.descend() if governor is not None else None
            )
            try:
                report = self._run_engine(
                    program, rung, source_key, rung_governor
                )
            except TransformError as skip:
                # the rung cannot express this program (e.g. an SCMP
                # solver on a heap client): skip it rather than lose
                # the salvage already banked — the residue continues
                # down the ladder or folds into conservative alarms
                attempted.pop()
                note(
                    "warning",
                    engine=engine,
                    subject=partial.subject,
                    rung=rung,
                    reason=str(skip),
                )
                continue
            except ResourceExhausted as rung_error:
                if rung_error.partial is not None:
                    fresh = ledger.absorb_partial(rung_error.partial)
                    note(
                        "salvage",
                        engine=rung,
                        subject=partial.subject,
                        sites=fresh,
                        breach=rung_error.breach,
                    )
                continue
            ledger.absorb_report(report)
            completed = rung
            break
        stats = {
            "partial": bool(ledger.unresolved()),
            "breach": error.breach,
            "ladder": list(ladder.rungs_from(engine)),
            "degraded_to": attempted[-1] if attempted else None,
            "completed_rung": completed,
            "salvaged": len(ledger.salvaged),
            "sites_resolved": len(ledger.resolved_sites()),
            "sites_unresolved": len(ledger.unresolved()),
            "nodes_analyzed": partial.nodes_analyzed,
            "nodes_total": partial.nodes_total,
        }
        report = CertificationReport(
            subject=partial.subject,
            engine=engine,
            alarms=ledger.final_alarms(),
            stats=stats,
        )
        if self.options.emit_certificate:
            # a breached-and-salvaged run has no fixpoint annotation to
            # carry; emit a partial certificate (annotation: null, salvage
            # metadata in the verdict) that the checker rejects as
            # unverifiable rather than silently passing
            from repro.cert.emit import build_partial_certificate

            if not isinstance(source_key, str):
                raise ValueError(
                    "emit_certificate requires certifying from source text "
                    "(CertifySession.certify), since the certificate embeds "
                    "the client source"
                )
            with phase("emit", engine=engine) as meta:
                report.certificate = build_partial_certificate(
                    spec=self.spec,
                    engine=engine,
                    options=self.options,
                    source=source_key,
                    report=report,
                )
                meta["bytes"] = len(report.certificate.text())
        return report

    def artifacts(self, program: Program, engine: str, source_key=None) -> dict:
        """Build the engine-specific analysis artifacts — abstraction,
        transformed boolean program, specialized TVP + engine object, or
        inlined program + heap domain.

        Shared by the fixpoint path (:meth:`_run_engine`) and the
        certificate checker (:class:`repro.cert.CertificateChecker`), so
        both interpret the client through exactly the same construction.
        """
        options = self.options
        if engine == "interproc":
            return {"abstraction": self.abstraction(identity_families=True)}
        inlined = self._inline(program, source_key)
        if engine in ("fds", "relational"):
            abstraction = self.abstraction()
            boolprog = ClientTransformer(
                program, abstraction
            ).transform_inlined(inlined)
            return {"abstraction": abstraction, "boolprog": boolprog}
        if engine.startswith("tvla-"):
            abstraction = self.abstraction()
            tvp = self._specialize_tvp(inlined, abstraction)
            mode = engine.split("-", 1)[1]
            packed = packed_enabled(options)
            engine_obj = _identity_memo(
                self._engine_by_obj,
                tvp,
                (
                    mode,
                    options.prune_requires,
                    options.worklist,
                    options.memoize_transfers,
                    packed,
                ),
                lambda: TvlaEngine(
                    tvp,
                    mode=mode,
                    prune_requires=options.prune_requires,
                    worklist=options.worklist,
                    memoize_transfers=options.memoize_transfers,
                    packed=packed,
                ),
            )
            return {
                "abstraction": abstraction,
                "tvp": tvp,
                "engine_obj": engine_obj,
                "mode": mode,
            }
        if engine == "allocsite":
            domain = AllocSiteDomain()
        elif engine == "allocsite-recency":
            domain = AllocSiteDomain(recency=True)
        elif engine == "shapegraph":
            domain = ShapeGraphDomain()
        else:
            raise AssertionError("unreachable")
        return {"abstraction": None, "inlined": inlined, "domain": domain}

    def _attach_certificate(
        self, report: CertificationReport, engine: str, source_key, arts, capture
    ) -> None:
        from repro.cert.emit import build_certificate

        if not isinstance(source_key, str):
            raise ValueError(
                "emit_certificate requires certifying from source text "
                "(CertifySession.certify), since the certificate embeds "
                "the client source"
            )
        with phase("emit", engine=engine) as meta:
            certificate = build_certificate(
                spec=self.spec,
                engine=engine,
                options=self.options,
                abstraction=arts.get("abstraction"),
                source=source_key,
                report=report,
                arts=arts,
                capture=capture,
            )
            meta["bytes"] = len(certificate.text())
        report.certificate = certificate

    def _run_engine(
        self,
        program: Program,
        engine: str,
        source_key,
        governor: Optional[ResourceGovernor] = None,
    ) -> CertificationReport:
        options = self.options
        emit = options.emit_certificate
        arts = self.artifacts(program, engine, source_key)

        if engine == "interproc":
            certifier = InterproceduralCertifier(
                program,
                arts["abstraction"],
                prune_requires=options.prune_requires,
                worklist=options.worklist,
                governor=governor,
                summary_store=self._summary_store(),
            )
            report = certifier.certify(options.entry)
            if emit:
                self._attach_certificate(
                    report, engine, source_key, arts,
                    {"certifier": certifier},
                )
            return report

        if engine in ("fds", "relational"):
            sink: Optional[list] = [] if emit else None
            certify = certify_fds if engine == "fds" else certify_relational
            report = certify(
                arts["boolprog"],
                prune_requires=options.prune_requires,
                worklist=options.worklist,
                governor=governor,
                result_sink=sink,
            )
            if emit:
                self._attach_certificate(
                    report, engine, source_key, arts, {"result": sink[0]}
                )
            return report

        if engine.startswith("tvla-"):
            engine_obj = arts["engine_obj"]
            if options.compiled_eval:
                result = engine_obj.run(governor)
            else:
                with formula_compile.interpreted():
                    result = engine_obj.run(governor)
            report = result.report
            if emit:
                self._attach_certificate(
                    report, engine, source_key, arts, {"result": result}
                )
            return report

        generic = analyze_generic(
            arts["inlined"], arts["domain"], engine,
            worklist=options.worklist, governor=governor,
        )
        report = generic.report
        if emit:
            self._attach_certificate(
                report, engine, source_key, arts, {"result": generic}
            )
        return report

    # -- observability ---------------------------------------------------------

    def cache_stats(self) -> List[CacheStats]:
        return [
            self._abstractions.stats(),
            self._inlined.stats(),
            self._inlined_by_obj.stats(),
            self._tvp_by_obj.stats(),
            self._engine_by_obj.stats(),
        ]


# -- the legacy path -----------------------------------------------------------
#
# These module-level wrappers predate CertifySession and share one
# process-wide abstraction cache.  They now warn: new code should hold a
# session (warm derivations, explicit cache scope, governor options) and
# call .abstraction()/.certify()/.certify_program() on it instead.


def _warn_legacy(name: str, replacement: str) -> None:
    warnings.warn(
        f"repro.api.{name} is deprecated; use {replacement} "
        "(see the 'Sessions' section of the README)",
        DeprecationWarning,
        stacklevel=3,
    )


def derive_abstraction(
    spec: ComponentSpec, *, identity_families: bool = False, **kwargs
) -> DerivedAbstraction:
    """Derive (and cache) the specialized abstraction of a specification.

    .. deprecated::
       Use :meth:`CertifySession.abstraction`.
    """
    _warn_legacy("derive_abstraction", "CertifySession(spec).abstraction()")
    return _cached_abstraction(
        _ABSTRACTION_CACHE, spec, identity_families, kwargs
    )


def certify_source(
    source: str,
    spec: ComponentSpec,
    engine: str = "auto",
    **kwargs,
) -> CertificationReport:
    """Parse a Jlite client and certify it against ``spec``.

    .. deprecated::
       Use :meth:`CertifySession.certify` — a held session keeps the
       derived abstraction and transform caches warm across clients.
    """
    _warn_legacy("certify_source", "CertifySession(spec).certify(source)")
    session = CertifySession(
        spec, engine, CertifyOptions(**kwargs), cache=_ABSTRACTION_CACHE
    )
    return session.certify(source)


def certify_program(
    program: Program,
    engine: str = "auto",
    *,
    entry: Optional[str] = None,
    prune_requires: bool = True,
    inline_depth: int = 12,
) -> CertificationReport:
    """Certify a parsed client with the chosen engine.

    .. deprecated::
       Use :meth:`CertifySession.certify_program`.
    """
    _warn_legacy(
        "certify_program", "CertifySession(spec).certify_program(program)"
    )
    session = CertifySession(
        program.spec,
        engine,
        CertifyOptions(
            entry=entry,
            prune_requires=prune_requires,
            inline_depth=inline_depth,
        ),
        cache=_ABSTRACTION_CACHE,
    )
    return session.certify_program(program)
