"""High-level facade over the staged-certification pipeline.

The paper's workflow in three calls::

    spec = cmp_spec()                       # the component author's Easl spec
    abstraction = derive_abstraction(spec)  # certifier-generation time
    report = certify_source(client, spec)   # certify a client

:func:`certify_source` / :func:`certify_program` pick an engine:

========================  =====================================================
engine                    what runs
========================  =====================================================
``"auto"``                interproc for shallow clients, TVLA otherwise
``"fds"``                 intraprocedural FDS on the inlined program (§4.3)
``"relational"``          relational solver on the inlined program
``"interproc"``           the §8 summary-based context-sensitive solver
``"tvla-relational"``     specialized first-order abstraction + TVLA (§5)
``"tvla-independent"``    same, independent-attribute mode
``"allocsite"``           generic baseline: allocation-site points-to (§3)
``"allocsite-recency"``   generic baseline with recency (ablation)
``"shapegraph"``          generic baseline: storage shape graphs (§3, Fig. 7)
========================  =====================================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.certifier.fds import certify_fds
from repro.certifier.interproc import InterproceduralCertifier
from repro.certifier.relational import certify_relational
from repro.certifier.report import Alarm, CertificationReport
from repro.certifier.transform import ClientTransformer
from repro.derivation import DerivedAbstraction, derive
from repro.easl.spec import ComponentSpec
from repro.generic_analysis import (
    AllocSiteDomain,
    ShapeGraphDomain,
    analyze_generic,
)
from repro.lang.inline import inline_program
from repro.lang.types import Program, parse_program
from repro.tvla.engine import TvlaEngine
from repro.tvp.specialize import specialized_translation

ENGINES = (
    "auto",
    "fds",
    "relational",
    "interproc",
    "tvla-relational",
    "tvla-independent",
    "allocsite",
    "allocsite-recency",
    "shapegraph",
)

_ABSTRACTION_CACHE: Dict[tuple, DerivedAbstraction] = {}


def derive_abstraction(
    spec: ComponentSpec, *, identity_families: bool = False, **kwargs
) -> DerivedAbstraction:
    """Derive (and cache) the specialized abstraction of a specification."""
    key = (
        spec.name,
        identity_families,
        tuple(sorted(kwargs.items())),
    )
    if key not in _ABSTRACTION_CACHE:
        _ABSTRACTION_CACHE[key] = derive(
            spec, identity_families=identity_families, **kwargs
        )
    return _ABSTRACTION_CACHE[key]


def certify_source(
    source: str,
    spec: ComponentSpec,
    engine: str = "auto",
    **kwargs,
) -> CertificationReport:
    """Parse a Jlite client and certify it against ``spec``."""
    return certify_program(parse_program(source, spec), engine, **kwargs)


def certify_program(
    program: Program,
    engine: str = "auto",
    *,
    entry: Optional[str] = None,
    prune_requires: bool = True,
    inline_depth: int = 12,
) -> CertificationReport:
    """Certify a parsed client with the chosen engine."""
    spec = program.spec
    if engine == "auto":
        engine = "interproc" if program.is_shallow() else "tvla-relational"
    if engine not in ENGINES:
        raise ValueError(f"unknown engine {engine!r}; pick one of {ENGINES}")

    if engine == "interproc":
        abstraction = derive_abstraction(spec, identity_families=True)
        certifier = InterproceduralCertifier(
            program, abstraction, prune_requires=prune_requires
        )
        return certifier.certify(entry)

    inlined = inline_program(program, entry, max_depth=inline_depth)

    if engine in ("fds", "relational"):
        abstraction = derive_abstraction(spec)
        boolprog = ClientTransformer(program, abstraction).transform_inlined(
            inlined
        )
        if engine == "fds":
            return certify_fds(boolprog, prune_requires=prune_requires)
        return certify_relational(boolprog, prune_requires=prune_requires)

    if engine.startswith("tvla-"):
        abstraction = derive_abstraction(spec)
        tvp = specialized_translation(inlined, abstraction)
        mode = engine.split("-", 1)[1]
        result = TvlaEngine(
            tvp, mode=mode, prune_requires=prune_requires
        ).run()
        return result.report

    if engine == "allocsite":
        return analyze_generic(inlined, AllocSiteDomain(), engine).report
    if engine == "allocsite-recency":
        return analyze_generic(
            inlined, AllocSiteDomain(recency=True), engine
        ).report
    if engine == "shapegraph":
        return analyze_generic(inlined, ShapeGraphDomain(), engine).report
    raise AssertionError("unreachable")
