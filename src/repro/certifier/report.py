"""Certification verdicts and alarms."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set


@dataclass(frozen=True)
class Alarm:
    """One potential conformance violation.

    ``definite`` is True when the analysis additionally shows the checked
    predicate cannot be 0 at the site — the violation occurs on *every*
    execution reaching it (modulo the usual reachability caveat).
    """

    site_id: int
    line: int
    op_key: str
    instance: str
    definite: bool = False
    context: Optional[str] = None
    #: provenance chain showing how the witness predicate became true
    trace: Optional[str] = None

    def __str__(self) -> str:
        kind = "definite" if self.definite else "possible"
        where = f" in {self.context}" if self.context else ""
        text = (
            f"{kind} violation of {self.op_key} precondition at line "
            f"{self.line} (site {self.site_id}, witness {self.instance})"
            f"{where}"
        )
        if self.trace:
            text += f"\n    because: {self.trace}"
        return text


@dataclass
class CertificationReport:
    """The outcome of certifying one client against one specification."""

    subject: str
    engine: str
    alarms: List[Alarm] = field(default_factory=list)
    stats: Dict[str, object] = field(default_factory=dict)
    #: the proof-carrying fixpoint certificate, populated when the session
    #: ran with ``CertifyOptions(emit_certificate=True)``
    #: (a :class:`repro.cert.ConformanceCertificate`)
    certificate: Optional[object] = None

    @property
    def certified(self) -> bool:
        """True when no potential violation was found: the client
        conforms to the component's constraints on every execution."""
        return not self.alarms

    def alarm_sites(self) -> Set[int]:
        return {alarm.site_id for alarm in self.alarms}

    def alarm_lines(self) -> Set[int]:
        return {alarm.line for alarm in self.alarms}

    def describe(self) -> str:
        lines = [
            f"certification of {self.subject} ({self.engine}): "
            + ("CERTIFIED" if self.certified else f"{len(self.alarms)} alarm(s)")
        ]
        lines.extend(f"  {alarm}" for alarm in self.alarms)
        if self.stats:
            rendered = ", ".join(f"{k}={v}" for k, v in sorted(self.stats.items()))
            lines.append(f"  [{rendered}]")
        return "\n".join(lines)

    def __str__(self) -> str:
        return self.describe()
