"""Relational (powerset-of-valuations) solver for transformed clients.

Model-checking-style predicate abstraction tracks *sets of valuations* of
the boolean variables — exponential in the worst case (Section 4.6 notes
prior predicate-abstraction work "relies on model checking techniques
whose complexity is exponential").  This solver exists to validate the
paper's precision claim: on clients transformed with Rule 2 disjunct
splitting, its alarm set coincides with the FDS solver's (property-tested),
while being asymptotically and practically slower.

Because valuations are exact per-path states, ``assume v == w`` branch
conditions can refine the state set through the ``same`` instances —
a small precision edge the independent-attribute solver deliberately
forgoes (and which Rule 2 renders irrelevant for the alarm question).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.certifier.boolprog import BoolEdge, BoolProgram
from repro.certifier.report import Alarm, CertificationReport
from repro.runtime import guard as _guard
from repro.runtime.guard import ResourceExhausted, ResourceGovernor
from repro.runtime.trace import phase as trace_phase
from repro.util.worklist import make_worklist


class StateExplosion(ResourceExhausted):
    """The relational state set exceeded the configured budget.

    A :class:`~repro.runtime.guard.ResourceExhausted` with
    ``breach="structures"``; the solver attaches a
    :class:`~repro.runtime.guard.PartialResult` carrying the alarms
    confirmed before the explosion, so a blown-up run still reports the
    sites it did resolve.
    """

    def __init__(
        self, message: str, *, breach: str = "structures", partial=None
    ) -> None:
        super().__init__(message, breach=breach, partial=partial)


@dataclass
class RelationalSeed:
    """Warm-start for :meth:`RelationalSolver.solve` (incremental
    recertification): the parent fixpoint's valuation sets on the clean
    region (mapped to this program's node ids) plus the clean-frontier
    nodes to schedule first.  A seeded run recovers the cold run's alarm
    set by replaying the check edges over the final states — equal to
    cold accumulation because per-site hits are monotone ORs and the
    cold run's last transfer of each edge saw its source's full final
    valuation set."""

    states: Dict[int, FrozenSet[int]]
    frontier: Tuple[int, ...] = ()


@dataclass
class RelationalResult:
    program: BoolProgram
    states: Dict[int, FrozenSet[int]]
    alarms: List[Alarm]
    max_states: int
    iterations: int = 0


class RelationalSolver:
    def __init__(
        self,
        *,
        prune_requires: bool = True,
        apply_filters: bool = True,
        state_budget: int = 200_000,
        worklist: str = "rpo",
        governor: Optional[ResourceGovernor] = None,
    ) -> None:
        self.prune_requires = prune_requires
        self.apply_filters = apply_filters
        self.state_budget = state_budget
        self.worklist_order = worklist
        self.governor = governor

    def solve(
        self, program: BoolProgram, seed: Optional[RelationalSeed] = None
    ) -> RelationalResult:
        governor = self.governor
        init = frozenset([program.initial_mask()])
        worklist = make_worklist(
            self.worklist_order,
            program.entry,
            lambda n: [e.dst for e in program.out_edges(n)],
        )
        if seed is None:
            states: Dict[int, Set[int]] = {program.entry: set(init)}
            worklist.push(program.entry)
        else:
            states = {node: set(vals) for node, vals in seed.states.items()}
            for node in seed.frontier:
                worklist.push(node)
            if program.entry not in states:
                states[program.entry] = set(init)
                worklist.push(program.entry)
        in_degree: Dict[int, int] = {}
        for edge in program.edges:
            in_degree[edge.dst] = in_degree.get(edge.dst, 0) + 1
        max_states = 1
        iterations = 0
        alarm_hits: Dict[Tuple[int, int], List[bool]] = {}
        try:
            while worklist:
                if governor is not None:
                    governor.tick()
                iterations += 1
                node = worklist.pop()
                current = states.get(node, set())
                for edge in program.out_edges(node):
                    outgoing = self._transfer(edge, current, alarm_hits)
                    target = states.setdefault(edge.dst, set())
                    before = len(target)
                    # budget check *before* merging, so StateExplosion always
                    # reports the consistent pre-overflow count
                    grown = len(target | outgoing)
                    if grown > self.state_budget:
                        raise StateExplosion(
                            f"{program.name}: relational state set would grow "
                            f"to {grown} (> budget {self.state_budget}) at "
                            f"node {edge.dst} "
                            f"(in-degree {in_degree.get(edge.dst, 0)}); "
                            f"pre-overflow count {before}"
                        )
                    if governor is not None:
                        governor.check_structures(grown)
                    target |= outgoing
                    max_states = max(max_states, len(target))
                    if len(target) != before:
                        worklist.push(edge.dst)
        except (ResourceExhausted, MemoryError) as error:
            # mid-run alarm_hits only ever gain entries as states grow,
            # so the alarms confirmed so far survive into the fixpoint
            raise _guard.exhausted_from(
                error,
                engine="relational",
                subject=program.name,
                alarms=self._collect_alarms(program, alarm_hits),
                site_universe=_guard.boolprog_sites(program),
                nodes_analyzed=len(states),
                nodes_total=_node_count(program),
                stats={"iterations": iterations, "max_states": max_states},
            )
        if seed is not None:
            # the seeded run never transferred the clean region's edges,
            # so its accumulated hits are partial — replay every check
            # edge over the final states (the cold run's last transfer of
            # each edge saw exactly this valuation set) and recover the
            # cold high-water mark from the final sizes (sets only grow)
            alarm_hits = {}
            for edge in program.edges:
                if not edge.checks:
                    continue
                source = states.get(edge.src)
                if source:
                    self._transfer(edge, source, alarm_hits)
            max_states = max(
                1, max((len(vals) for vals in states.values()), default=1)
            )
        alarms = self._collect_alarms(program, alarm_hits)
        return RelationalResult(
            program,
            {node: frozenset(vals) for node, vals in states.items()},
            alarms,
            max_states,
            iterations,
        )

    def _transfer(
        self,
        edge: BoolEdge,
        current: Set[int],
        alarm_hits: Dict[Tuple[int, int], List[bool]],
    ) -> Set[int]:
        outgoing: Set[int] = set()
        for valuation in current:
            value = valuation
            failed = False
            for check in edge.checks:
                record = alarm_hits.setdefault(
                    (check.site_id, check.var), [False, False]
                )
                if value >> check.var & 1:
                    record[0] = True  # some execution fails here
                    failed = True
                else:
                    record[1] = True  # some execution passes here
            if failed and self.prune_requires:
                continue  # execution aborted by the thrown exception
            if self.apply_filters:
                violated = False
                for var, expected in edge.filters:
                    if bool(value >> var & 1) != expected:
                        violated = True
                        break
                if violated:
                    continue
            updated = value
            for assign in edge.assigns:
                bit = 1 << assign.target
                result = assign.const_true or any(
                    value >> source & 1 for source in assign.sources
                )
                updated = updated | bit if result else updated & ~bit
            outgoing.add(updated)
        return outgoing

    def _collect_alarms(
        self,
        program: BoolProgram,
        alarm_hits: Dict[Tuple[int, int], List[bool]],
    ) -> List[Alarm]:
        sites: Dict[int, object] = {}
        for edge in program.edges:
            for check in edge.checks:
                sites[(check.site_id, check.var)] = check
        alarms: List[Alarm] = []
        for (site_id, var), (fails, passes) in sorted(alarm_hits.items()):
            if not fails:
                continue
            check = sites[(site_id, var)]
            alarms.append(
                Alarm(
                    site_id=site_id,
                    line=check.line,  # type: ignore[attr-defined]
                    op_key=check.op_key,  # type: ignore[attr-defined]
                    instance=str(program.instance(var)),
                    definite=not passes,
                )
            )
        return alarms


def _node_count(program: BoolProgram) -> int:
    nodes = {program.entry}
    for edge in program.edges:
        nodes.add(edge.src)
        nodes.add(edge.dst)
    return len(nodes)


def certify_relational(
    program: BoolProgram,
    *,
    result_sink: Optional[List[RelationalResult]] = None,
    seed: Optional[RelationalSeed] = None,
    **kwargs,
) -> CertificationReport:
    solver = RelationalSolver(**kwargs)
    with trace_phase("fixpoint", engine="relational") as trace_meta:
        result = solver.solve(program, seed)
        trace_meta.update(
            max_states=result.max_states, variables=program.num_vars
        )
    if result_sink is not None:
        result_sink.append(result)
    return CertificationReport(
        subject=program.name,
        engine="relational",
        alarms=result.alarms,
        stats={
            "max_states": result.max_states,
            "variables": program.num_vars,
        },
    )
