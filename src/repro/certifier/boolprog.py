"""The boolean-program intermediate representation (Fig. 6).

A transformed client is a CFG whose edges carry:

* a list of **checks** — ``requires ¬p`` obligations evaluated on the
  state *before* the edge's updates (component preconditions are checked
  at method entry);
* a **parallel assignment block** — simultaneous updates of the special
  form ``p0 := p1 ∨ … ∨ pk [∨ 1]`` or the constants 0/1, all right-hand
  sides reading pre-edge values (Fig. 5's method abstractions update
  several predicates of one family at once, so parallelism matters).

Variables are instrumentation-predicate *instances*: a family applied to a
tuple of client variable names (``stale[i2]``, ``iterof[i1, v]``, …).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple


@dataclass(frozen=True)
class Instance:
    """One instrumentation-predicate instance over client variables."""

    family: str
    args: Tuple[str, ...]

    def __str__(self) -> str:
        if not self.args:
            return self.family
        return f"{self.family}[{', '.join(self.args)}]"


@dataclass(frozen=True)
class ParallelAssign:
    """``target := sources[0] ∨ … ∨ sources[k] [∨ const_true]``.

    ``sources`` are variable indices; an empty source list with
    ``const_true=False`` is the constant 0.
    """

    target: int
    sources: Tuple[int, ...]
    const_true: bool = False


@dataclass(frozen=True)
class Check:
    """``requires ¬var`` at a component call site."""

    site_id: int
    line: int
    op_key: str
    var: int


@dataclass(frozen=True)
class BoolEdge:
    src: int
    dst: int
    checks: Tuple[Check, ...] = ()
    assigns: Tuple[ParallelAssign, ...] = ()
    #: relational-only refinement: keep states where var == value
    filters: Tuple[Tuple[int, bool], ...] = ()
    #: source line of the originating client statement (0 = synthetic)
    line: int = 0


class BoolProgram:
    """A boolean program over instrumentation-predicate instances."""

    def __init__(self, name: str) -> None:
        self.name = name
        self.entry: int = 0
        self.exit: int = 0
        self._instances: List[Instance] = []
        self._index: Dict[Instance, int] = {}
        self.edges: List[BoolEdge] = []
        self._out: Dict[int, List[BoolEdge]] = {}
        #: variable indices that are 1 on entry (e.g. reflexive `same`)
        self.initially_true: List[int] = []

    # -- variables -------------------------------------------------------------

    def variable(self, instance: Instance) -> int:
        if instance not in self._index:
            self._index[instance] = len(self._instances)
            self._instances.append(instance)
        return self._index[instance]

    def lookup(self, instance: Instance) -> Optional[int]:
        return self._index.get(instance)

    def instance(self, index: int) -> Instance:
        return self._instances[index]

    @property
    def num_vars(self) -> int:
        return len(self._instances)

    def instances(self) -> Sequence[Instance]:
        return tuple(self._instances)

    # -- edges ------------------------------------------------------------------

    def add_edge(self, edge: BoolEdge) -> None:
        self.edges.append(edge)
        self._out.setdefault(edge.src, []).append(edge)

    def out_edges(self, node: int) -> List[BoolEdge]:
        return self._out.get(node, [])

    def nodes(self) -> List[int]:
        found = {self.entry, self.exit}
        for edge in self.edges:
            found.add(edge.src)
            found.add(edge.dst)
        return sorted(found)

    def initial_mask(self) -> int:
        mask = 0
        for index in self.initially_true:
            mask |= 1 << index
        return mask

    def describe(self) -> str:
        lines = [
            f"boolean program {self.name}: {self.num_vars} variables, "
            f"{len(self.edges)} edges"
        ]
        for index, instance in enumerate(self._instances):
            marker = " (init 1)" if index in self.initially_true else ""
            lines.append(f"  b{index} = {instance}{marker}")
        for edge in self.edges:
            parts = []
            for check in edge.checks:
                parts.append(
                    f"requires !{self.instance(check.var)} @site{check.site_id}"
                )
            for assign in edge.assigns:
                rhs = [str(self.instance(s)) for s in assign.sources]
                if assign.const_true:
                    rhs.append("1")
                parts.append(
                    f"{self.instance(assign.target)} := "
                    f"{' | '.join(rhs) if rhs else '0'}"
                )
            label = "; ".join(parts) if parts else "nop"
            lines.append(f"  {edge.src} --[{label}]--> {edge.dst}")
        return "\n".join(lines)
