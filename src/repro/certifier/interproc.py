"""Context-sensitive interprocedural SCMP certification (Section 8).

The intraprocedural certifier extends to arbitrary (shallow) call graphs
with a *functional* tabulation: each procedure is transformed to a boolean
program over its own instrumentation instances, and summaries
``entry may-1 vector → exit may-1 vector`` are computed per reached entry
vector (value contexts), giving meet-over-all-valid-paths context
sensitivity for the union-distributive may-1 property.  Recursion is
handled by iterating summaries to a fixpoint (they grow monotonically in a
finite lattice), so the whole computation is polynomial in the program
size for a fixed number of component variables per scope.

Relating caller facts to callee facts needs three devices:

* **Ghost variables** (``x##in``) snapshot each component-typed formal and
  static at procedure entry.  Formals may be reassigned and statics
  overwritten, but a ghost keeps naming the object the caller's actual
  still points to, so post-call caller facts are read off exit facts over
  ghosts.
* **Identity families** (``x == y`` per component type, derived with
  ``identity_families=True``) reconnect a reassigned static or a returned
  reference to its entry-time origin: after the call, ``iterof(x, S)``
  holds iff for some interface collection ``w``, ``iterof(x, β(w))`` held
  at the call and the callee exits with ``S == ghost(w)``.
* **Phantom iterators** (``w##ph``) stand for "an arbitrary
  already-existing iterator over ``w``'s collection".  The callee updates
  their ``stale`` instances through the ordinary derived abstraction, so
  ``stale(phantom)`` at exit is precisely "the callee may have invalidated
  iterators of that collection" — what a caller-local iterator that was
  never passed in needs to know.

The compositions at return conjoin a caller fact (state at the call) with
a callee exit fact; a caller path to the call site concatenates with any
callee path into an interprocedurally-valid path, so conjoining the two
independent may-1 answers is sound.  The whole solver is validated against
exhaustive inlining on the benchmark suite (``tests/test_interproc.py``).
"""

from __future__ import annotations

import itertools
from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple

from repro.certifier.boolprog import BoolProgram, Instance
from repro.certifier.report import Alarm, CertificationReport
from repro.certifier.transform import (
    ClientTransformer,
    TransformError,
    family_mentions_mutable_field,
    reflexively_true,
)
from repro.derivation.predicates import DerivedAbstraction, Family
from repro.lang.cfg import CFG, SCallClient, SCopy, SReturn
from repro.lang.types import MethodInfo, Program
from repro.logic.formula import And, EqAtom, Not
from repro.logic.terms import Base, Field
from repro.runtime import guard as _guard
from repro.runtime.guard import ResourceExhausted, ResourceGovernor
from repro.runtime.trace import phase as trace_phase
from repro.util.worklist import (
    FifoWorklist,
    PriorityWorklist,
    reverse_postorder,
)

GHOST_SUFFIX = "##in"
PHANTOM_SUFFIX = "##ph"
RET_VAR = "##ret"


# -- family shape classification ---------------------------------------------------


@dataclass
class Shapes:
    """Structural roles of the derived families (the CMP-class shapes)."""

    identity: Dict[str, str]  # sort -> family name (x == y)
    mutable_unary: Dict[str, str]  # sort -> family name (stale-like)
    relation: Dict[Tuple[str, str], str]  # (iter, collection) -> iterof
    mutex: Dict[str, str]  # iter sort -> mutx-like family
    collection_of: Dict[str, str]  # iterator sort -> its collection sort
    #: relation families whose argument order is (collection, iterator)
    relation_swapped: set = None  # type: ignore[assignment]

    def relation_args(
        self, family: str, iter_name: str, set_name: str
    ) -> Tuple[str, str]:
        """Argument tuple for a relation instance, respecting the
        family's derived positional order."""
        if self.relation_swapped and family in self.relation_swapped:
            return (set_name, iter_name)
        return (iter_name, set_name)


def classify_shapes(abstraction: DerivedAbstraction) -> Shapes:
    shapes = Shapes({}, {}, {}, {}, {}, set())
    for family in abstraction.families:
        formula = family.formula
        if family.arity == 2 and isinstance(formula, EqAtom):
            lhs, rhs = formula.lhs, formula.rhs
            if isinstance(lhs, Base) and isinstance(rhs, Base):
                shapes.identity[family.sorts[0]] = family.name
            elif (
                isinstance(lhs, Field)
                and isinstance(lhs.base, Base)
                and isinstance(rhs, Base)
            ):
                shapes.relation[(family.sorts[0], family.sorts[1])] = (
                    family.name
                )
                shapes.collection_of[family.sorts[0]] = family.sorts[1]
            elif (
                isinstance(rhs, Field)
                and isinstance(rhs.base, Base)
                and isinstance(lhs, Base)
            ):
                shapes.relation[(family.sorts[1], family.sorts[0])] = (
                    family.name
                )
                shapes.collection_of[family.sorts[1]] = family.sorts[0]
                shapes.relation_swapped.add(family.name)
        elif family.arity == 1 and family_mentions_mutable_field(
            family, abstraction.spec
        ):
            shapes.mutable_unary[family.sorts[0]] = family.name
        elif (
            family.arity == 2
            and family.sorts[0] == family.sorts[1]
            and isinstance(formula, And)
            and any(
                isinstance(a, Not) and isinstance(a.body, EqAtom)
                for a in formula.args
            )
        ):
            shapes.mutex[family.sorts[0]] = family.name
    return shapes


# -- per-procedure context ------------------------------------------------------------


@dataclass
class ProcSpace:
    """The fact space and boolean program of one procedure."""

    method: MethodInfo
    boolprog: BoolProgram
    variables: Dict[str, str]  # all component vars incl ghosts/phantoms
    formals: Dict[str, str]  # component-typed formals (incl "this")
    ghosts: Dict[str, str]  # ghost name -> anchored name (formal or static)
    phantoms: Dict[str, str]  # phantom name -> anchor ghost name
    call_edges: List[Tuple[int, int, SCallClient]]
    default_mask: int  # instance values when everything is null


class InterproceduralCertifier:
    """The Section 8 certifier.

    ``abstraction`` must be derived with ``identity_families=True`` so
    the return compositions can reconnect reassigned references to their
    entry-time origins.
    """

    def __init__(
        self,
        program: Program,
        abstraction: DerivedAbstraction,
        *,
        prune_requires: bool = True,
        worklist: str = "rpo",
        governor: Optional[ResourceGovernor] = None,
        summary_store=None,
    ) -> None:
        if not program.is_shallow():
            raise TransformError(
                "interprocedural SCMP certification requires a shallow "
                "client (component references only in locals/statics); "
                "use the TVLA pipeline for heap clients"
            )
        self.program = program
        self.abstraction = abstraction
        self.spec = abstraction.spec
        self.prune_requires = prune_requires
        self.shapes = classify_shapes(abstraction)
        self.transformer = ClientTransformer(
            program, abstraction, on_client_call="skip"
        )
        self.statics = {
            name: type_
            for name, type_ in program.statics.items()
            if self.spec.is_component_type(type_)
        }
        self.spaces: Dict[str, ProcSpace] = {}
        self.worklist_order = worklist
        #: cooperative resource budgets, polled in both worklist loops
        self.governor = governor
        #: per-space reverse-postorder priorities for the local fixpoints
        self._rpo: Dict[str, Dict[int, int]] = {}
        self._formal_visible: Dict[str, str] = {}
        #: set by a completed ``certify``: the tabulation fixpoint
        #: (per-context node masks + summary table) for certificate emission
        self.fixpoint: Optional[Dict[str, object]] = None
        self.stats: Dict[str, int] = {
            "contexts": 0,
            "summary_updates": 0,
            "edge_visits": 0,
        }
        #: optional :class:`repro.store.summary.SummaryStore`: completed
        #: context summaries are persisted after certification and
        #: loaded (behind a linear validity re-check) instead of
        #: recomputed on later runs that share library code
        self.summary_store = summary_store
        if summary_store is not None:
            self.stats.update(
                {
                    "summaries_loaded": 0,
                    "summaries_stored": 0,
                    "summary_rejects": 0,
                }
            )
        #: contexts installed from the store this run (validated final
        #: fixpoints: re-analysis cannot grow them, so they are skipped)
        self._loaded: Set[Tuple[str, int]] = set()
        #: contexts whose load already missed or failed validation
        self._load_failed: Set[Tuple[str, int]] = set()
        self._space_keys: Dict[str, str] = {}
        self._analysis_key_memo: Optional[str] = None
        #: per-family memos for the two spec queries on the call-mapping
        #: hot path (family names are unique within an abstraction);
        #: recomputing the formula scans per call edge dominated
        #: large-program profiles
        self._mutable_memo: Dict[str, bool] = {}
        self._reflexive_memo: Dict[str, bool] = {}

    def _family_mutable(self, family: Family) -> bool:
        value = self._mutable_memo.get(family.name)
        if value is None:
            value = family_mentions_mutable_field(family, self.spec)
            self._mutable_memo[family.name] = value
        return value

    def _family_reflexive(self, family: Family) -> bool:
        value = self._reflexive_memo.get(family.name)
        if value is None:
            value = reflexively_true(family)
            self._reflexive_memo[family.name] = value
        return value

    def _local_worklist(self, qualified: str, boolprog):
        """A fresh per-context worklist over one method's boolean CFG.

        The RPO map is computed once per fact space and reused by every
        (method, entry-vector) context analyzed over it.
        """
        if self.worklist_order == "fifo":
            return FifoWorklist()
        priority = self._rpo.get(qualified)
        if priority is None:
            priority = reverse_postorder(
                boolprog.entry,
                lambda n: [e.dst for e in boolprog.out_edges(n)],
            )
            self._rpo[qualified] = priority
        return PriorityWorklist(priority)

    # -- fact-space construction ------------------------------------------------------

    def space(self, qualified: str) -> ProcSpace:
        if qualified in self.spaces:
            return self.spaces[qualified]
        minfo = self.program.method(qualified)
        variables: Dict[str, str] = {}
        formals: Dict[str, str] = {}
        param_names = {name for name, _t in minfo.params}
        if not minfo.is_static:
            param_names.add("this")
        for name, type_ in minfo.variables.items():
            if self.spec.is_component_type(type_):
                variables[name] = type_
                if name in param_names:
                    formals[name] = type_
        for name, type_ in self.statics.items():
            variables[name] = type_
        ghosts: Dict[str, str] = {}
        for name in list(formals) + list(self.statics):
            ghost = name + GHOST_SUFFIX
            ghosts[ghost] = name
            variables[ghost] = formals.get(name) or self.statics[name]
        phantoms: Dict[str, str] = {}
        for ghost in ghosts:
            phantom_sort = self._phantom_sort(variables[ghost])
            if phantom_sort is not None:
                phantom = ghost + PHANTOM_SUFFIX
                phantoms[phantom] = ghost
                variables[phantom] = phantom_sort
        if self.spec.is_component_type(minfo.return_type):
            variables[RET_VAR] = minfo.return_type
        cfg = self._prepared_cfg(minfo)
        boolprog = self.transformer.transform_cfg(cfg, variables)
        call_edges = [
            (e.src, e.dst, e.stm)
            for e in cfg.edges
            if isinstance(e.stm, SCallClient)
        ]
        space = ProcSpace(
            minfo,
            boolprog,
            variables,
            formals,
            ghosts,
            phantoms,
            call_edges,
            boolprog.initial_mask(),
        )
        self.spaces[qualified] = space
        return space

    def _phantom_sort(self, anchor_sort: str) -> Optional[str]:
        """The phantom-iterator sort for anchors of ``anchor_sort`` —
        None when the spec has no invalidation (no stale-like family)."""
        for iter_sort in self.shapes.mutable_unary:
            collection = self.shapes.collection_of.get(iter_sort)
            if anchor_sort in (iter_sort, collection):
                return iter_sort
        return None

    def _prepared_cfg(self, minfo: MethodInfo) -> CFG:
        """Clone the CFG, turning component-typed returns into copies to
        the pseudo-variable ``##ret`` so exit facts can mention it."""
        source = minfo.cfg
        assert source is not None
        cfg = CFG(source.method)
        mapping = {source.entry: cfg.entry, source.exit: cfg.exit}

        def node(n: int) -> int:
            if n not in mapping:
                mapping[n] = cfg.new_node()
            return mapping[n]

        returns_component = self.spec.is_component_type(minfo.return_type)
        for edge in source.edges:
            stm = edge.stm
            if (
                isinstance(stm, SReturn)
                and stm.var is not None
                and returns_component
            ):
                stm = SCopy(RET_VAR, stm.var, minfo.return_type, stm.line)
            cfg.add_edge(node(edge.src), node(edge.dst), stm)
        return cfg

    # -- value lookups --------------------------------------------------------------------

    def _caller_value(
        self, caller: ProcSpace, mask: int, family: str, args: Tuple[str, ...]
    ) -> bool:
        index = caller.boolprog.lookup(Instance(family, args))
        return index is not None and bool(mask >> index & 1)

    def _exit_value(
        self, callee: ProcSpace, mask: int, family: str, args: Tuple[str, ...]
    ) -> bool:
        index = callee.boolprog.lookup(Instance(family, args))
        return index is not None and bool(mask >> index & 1)

    def _caller_symmetric(
        self, caller: ProcSpace, mask: int, family: str, a: str, b: str
    ) -> bool:
        """Query a symmetric (identity/mutex-shaped) family in either
        argument order."""
        return self._caller_value(
            caller, mask, family, (a, b)
        ) or self._caller_value(caller, mask, family, (b, a))

    # -- entry-vector construction -----------------------------------------------------------

    def _beta(self, stm: SCallClient, callee: ProcSpace) -> Dict[str, str]:
        """Caller-visible name of each callee interface variable."""
        minfo = callee.method
        beta: Dict[str, str] = {}
        if stm.receiver is not None and not minfo.is_static:
            beta["this"] = stm.receiver
        for (pname, _pt), actual in zip(minfo.params, stm.args):
            beta[pname] = actual
        for static in self.statics:
            beta[static] = static
        for ghost, anchored in callee.ghosts.items():
            if anchored in beta:
                beta[ghost] = beta[anchored]
        return beta

    def map_entry(
        self,
        caller: ProcSpace,
        caller_mask: int,
        stm: SCallClient,
        callee: ProcSpace,
    ) -> int:
        beta = self._beta(stm, callee)
        entry = 0
        for index, instance in enumerate(callee.boolprog.instances()):
            if self._entry_value(instance, beta, caller, caller_mask, callee):
                entry |= 1 << index
        return entry

    def _entry_value(
        self,
        instance: Instance,
        beta: Dict[str, str],
        caller: ProcSpace,
        caller_mask: int,
        callee: ProcSpace,
    ) -> bool:
        family = self.abstraction.family(instance.family)
        has_phantom = any(a in callee.phantoms for a in instance.args)
        if has_phantom:
            return self._phantom_entry_value(
                instance, family, beta, caller, caller_mask, callee
            )
        mapped: List[str] = []
        for arg in instance.args:
            visible = beta.get(arg)
            if visible is None:
                # a callee local (incl. ##ret): null at entry
                return (
                    len(set(instance.args)) <= 1
                    and self._family_reflexive(family)
                )
            mapped.append(visible)
        return self._caller_value(
            caller, caller_mask, family.name, tuple(mapped)
        )

    def _phantom_entry_value(
        self,
        instance: Instance,
        family: Family,
        beta: Dict[str, str],
        caller: ProcSpace,
        caller_mask: int,
        callee: ProcSpace,
    ) -> bool:
        shapes = self.shapes
        args = instance.args
        if family.name in shapes.identity.values():
            return args[0] == args[1]
        if family.name in shapes.mutable_unary.values():
            return False  # a pre-existing iterator is valid at entry
        phantoms = [a for a in args if a in callee.phantoms]
        if len(phantoms) == len(args):
            return False
        phantom = phantoms[0]
        other = next(a for a in args if a not in callee.phantoms)
        other_visible = beta.get(other)
        if other_visible is None:
            return False  # phantom vs. callee local: null at entry
        anchor_ghost = callee.phantoms[phantom]
        anchor_visible = beta.get(anchor_ghost)
        if anchor_visible is None:
            return False
        anchor_sort = callee.variables[anchor_ghost]
        iter_sort = callee.variables[phantom]
        set_sort = shapes.collection_of.get(iter_sort)
        relation = shapes.relation.get((iter_sort, set_sort or ""))
        other_sort = callee.variables.get(other, "")
        if anchor_sort == set_sort:
            # phantom iterates the anchor collection itself
            if family.name == relation and other_sort == set_sort:
                identity_set = shapes.identity.get(set_sort or "")
                return identity_set is not None and (
                    self._caller_symmetric(
                        caller, caller_mask, identity_set,
                        anchor_visible, other_visible,
                    )
                    or anchor_visible == other_visible
                )
            if family.name == shapes.mutex.get(iter_sort):
                return relation is not None and self._caller_value(
                    caller, caller_mask, relation,
                    shapes.relation_args(
                        relation, other_visible, anchor_visible
                    ),
                )
            return False
        # phantom shares the anchor iterator's collection
        if family.name == relation and other_sort == set_sort:
            return relation is not None and self._caller_value(
                caller, caller_mask, relation,
                shapes.relation_args(
                    relation, anchor_visible, other_visible
                ),
            )
        if family.name == shapes.mutex.get(iter_sort):
            if other_sort != iter_sort:
                return False
            mutex = shapes.mutex[iter_sort]
            identity_iter = shapes.identity.get(iter_sort)
            return self._caller_symmetric(
                caller, caller_mask, mutex, anchor_visible, other_visible
            ) or (
                identity_iter is not None
                and (
                    self._caller_symmetric(
                        caller, caller_mask, identity_iter,
                        anchor_visible, other_visible,
                    )
                    or anchor_visible == other_visible
                )
            )
        return False

    # -- return-vector construction ------------------------------------------------------------

    def map_return(
        self,
        caller: ProcSpace,
        caller_mask: int,
        stm: SCallClient,
        callee: ProcSpace,
        exit_mask: int,
    ) -> int:
        ghost_of: Dict[str, str] = {}
        beta = self._beta(stm, callee)
        for ghost, anchored in callee.ghosts.items():
            visible = beta.get(anchored)
            if visible is not None and visible not in ghost_of:
                ghost_of[visible] = ghost
        result_var = (
            stm.result if RET_VAR in callee.variables else None
        )
        out = 0
        for index, instance in enumerate(caller.boolprog.instances()):
            if self._return_value(
                instance, caller, caller_mask, callee, exit_mask, ghost_of,
                result_var,
            ):
                out |= 1 << index
        return out

    def _return_value(
        self,
        instance: Instance,
        caller: ProcSpace,
        caller_mask: int,
        callee: ProcSpace,
        exit_mask: int,
        ghost_of: Dict[str, str],
        result_var: Optional[str],
    ) -> bool:
        family = self.abstraction.family(instance.family)
        current = self._caller_value(
            caller, caller_mask, family.name, instance.args
        )
        callee_names: List[Optional[str]] = []
        changed: List[bool] = []
        local_positions: List[int] = []
        for pos, arg in enumerate(instance.args):
            if result_var is not None and arg == result_var:
                callee_names.append(RET_VAR)
                changed.append(True)
            elif arg in self.statics:
                callee_names.append(arg)
                changed.append(True)
            elif arg in ghost_of:
                callee_names.append(ghost_of[arg])
                changed.append(False)
            else:
                callee_names.append(None)
                changed.append(False)
                local_positions.append(pos)
        if not local_positions:
            return self._exit_value(
                callee, exit_mask, family.name,
                tuple(callee_names),  # type: ignore[arg-type]
            )
        mutable = self._family_mutable(family)
        if mutable:
            if family.arity != 1:
                return True  # outside the CMP class: stay sound
            return current or self._invalidated_via_interface(
                instance.args[0], caller, caller_mask, callee, exit_mask
            )
        if not any(changed):
            return current  # locals + actuals only: values frozen
        return self._origin_composition(
            instance, family, caller, caller_mask, callee, exit_mask,
            callee_names, changed,
        ) or self._fresh_object_composition(
            instance, family, caller, caller_mask, callee, exit_mask,
            callee_names, changed,
        )

    def _interface_ghosts(
        self, callee: ProcSpace, sort: str
    ) -> List[Tuple[str, str]]:
        return [
            (ghost, anchored)
            for ghost, anchored in callee.ghosts.items()
            if callee.variables[ghost] == sort
        ]

    def _origin_visible(self, anchored: str) -> Optional[str]:
        if anchored in self.statics:
            return anchored
        return self._formal_visible.get(anchored)

    def _invalidated_via_interface(
        self,
        local: str,
        caller: ProcSpace,
        caller_mask: int,
        callee: ProcSpace,
        exit_mask: int,
    ) -> bool:
        iter_sort = caller.variables.get(local)
        if iter_sort is None:
            return True
        stale = self.shapes.mutable_unary.get(iter_sort)
        set_sort = self.shapes.collection_of.get(iter_sort)
        relation = self.shapes.relation.get((iter_sort, set_sort or ""))
        mutex = self.shapes.mutex.get(iter_sort)
        identity_iter = self.shapes.identity.get(iter_sort)
        if stale is None:
            return True
        for phantom, anchor_ghost in callee.phantoms.items():
            if callee.variables[phantom] != iter_sort:
                continue
            if not self._exit_value(callee, exit_mask, stale, (phantom,)):
                continue
            visible = self._origin_visible(callee.ghosts[anchor_ghost])
            if visible is None:
                continue
            anchor_sort = callee.variables[anchor_ghost]
            if anchor_sort == set_sort and relation is not None:
                if self._caller_value(
                    caller, caller_mask, relation,
                    self.shapes.relation_args(relation, local, visible),
                ):
                    return True
            elif anchor_sort == iter_sort:
                if mutex is not None and self._caller_symmetric(
                    caller, caller_mask, mutex, local, visible
                ):
                    return True
                if identity_iter is not None and (
                    self._caller_symmetric(
                        caller, caller_mask, identity_iter, local, visible
                    )
                    or local == visible
                ):
                    return True
        # the local may *be* one of the passed iterators
        if identity_iter is not None:
            for ghost, anchored in self._interface_ghosts(callee, iter_sort):
                visible = self._origin_visible(anchored)
                if visible is None:
                    continue
                if (
                    self._caller_symmetric(
                        caller, caller_mask, identity_iter, local, visible
                    )
                    or local == visible
                ) and self._exit_value(callee, exit_mask, stale, (ghost,)):
                    return True
        return False

    def _origin_composition(
        self,
        instance: Instance,
        family: Family,
        caller: ProcSpace,
        caller_mask: int,
        callee: ProcSpace,
        exit_mask: int,
        callee_names: List[Optional[str]],
        changed: List[bool],
    ) -> bool:
        """Reconnect each changed (static / returned) position to an
        entry-time origin via the identity families."""
        identity = self.shapes.identity
        positions = [p for p, c in enumerate(changed) if c]
        pools = [
            self._interface_ghosts(callee, family.sorts[p])
            for p in positions
        ]
        for combo in itertools.product(*pools):
            caller_args = list(instance.args)
            visible_ok = True
            for (ghost, anchored), pos in zip(combo, positions):
                visible = self._origin_visible(anchored)
                if visible is None:
                    visible_ok = False
                    break
                caller_args[pos] = visible
            if not visible_ok:
                continue
            if not self._caller_value(
                caller, caller_mask, family.name, tuple(caller_args)
            ):
                continue
            linked = True
            for (ghost, _anchored), pos in zip(combo, positions):
                id_family = identity.get(family.sorts[pos])
                name = callee_names[pos]
                if id_family is None or name is None:
                    linked = False
                    break
                if not (
                    self._exit_value(
                        callee, exit_mask, id_family, (ghost, name)
                    )
                    or self._exit_value(
                        callee, exit_mask, id_family, (name, ghost)
                    )
                ):
                    linked = False
                    break
            if linked:
                return True
        return False

    def _fresh_object_composition(
        self,
        instance: Instance,
        family: Family,
        caller: ProcSpace,
        caller_mask: int,
        callee: ProcSpace,
        exit_mask: int,
        callee_names: List[Optional[str]],
        changed: List[bool],
    ) -> bool:
        """A changed position may hold a *callee-created* iterator over a
        pre-existing collection; relation/mutex facts can then hold with
        no identity link.  Handles the two CMP-class shapes."""
        shapes = self.shapes
        if sum(changed) != 1:
            return False
        pos = changed.index(True)
        other = 1 - pos if family.arity == 2 else None
        changed_name = callee_names[pos]
        if changed_name is None or other is None:
            return False
        if family.name in shapes.relation.values():
            iter_pos = 0 if family.sorts[0] in shapes.collection_of else 1
            if pos != iter_pos:
                return False  # collections are never callee-fresh *and*
                # related to a pre-existing iterator
            set_sort = family.sorts[1 - iter_pos]
            identity_set = shapes.identity.get(set_sort)
            if identity_set is None:
                return False
            local_set = instance.args[other]
            for ghost, anchored in self._interface_ghosts(callee, set_sort):
                visible = self._origin_visible(anchored)
                if visible is None:
                    continue
                same_at_call = (
                    visible == local_set
                    or self._caller_value(
                        caller, caller_mask, identity_set,
                        (visible, local_set),
                    )
                    or self._caller_value(
                        caller, caller_mask, identity_set,
                        (local_set, visible),
                    )
                )
                exit_args = (
                    (changed_name, ghost)
                    if iter_pos == 0
                    else (ghost, changed_name)
                )
                if same_at_call and self._exit_value(
                    callee, exit_mask, family.name, exit_args
                ):
                    return True
            return False
        if family.name in shapes.mutex.values():
            iter_sort = family.sorts[0]
            set_sort = shapes.collection_of.get(iter_sort)
            relation = shapes.relation.get((iter_sort, set_sort or ""))
            if relation is None:
                return False
            local = instance.args[other]
            for ghost, anchored in self._interface_ghosts(
                callee, set_sort or ""
            ):
                visible = self._origin_visible(anchored)
                if visible is None:
                    continue
                if self._caller_value(
                    caller, caller_mask, relation,
                    shapes.relation_args(relation, local, visible),
                ) and self._exit_value(
                    callee, exit_mask, relation,
                    shapes.relation_args(relation, changed_name, ghost),
                ):
                    return True
        return False

    # -- the tabulation ---------------------------------------------------------------------

    def certify(self, entry: Optional[str] = None) -> CertificationReport:
        with trace_phase("fixpoint", engine="interproc") as trace_meta:
            report = self._certify(entry)
            trace_meta.update(
                contexts=self.stats["contexts"],
                edge_visits=self.stats["edge_visits"],
            )
        return report

    def _certify(self, entry: Optional[str] = None) -> CertificationReport:
        entry_method = (
            self.program.method(entry) if entry else self.program.entry
        )
        entry_space = self.space(entry_method.qualified)
        memo: Dict[Tuple[str, int], Optional[int]] = {}
        node_states: Dict[Tuple[str, int], Dict[int, int]] = {}
        node_zeros: Dict[Tuple[str, int], Dict[int, int]] = {}
        dependents: Dict[Tuple[str, int], Set[Tuple[str, int]]] = {}
        worklist: deque = deque()
        queued: Set[Tuple[str, int]] = set()
        alarms: Dict[Tuple[int, str], Alarm] = {}

        def schedule(key: Tuple[str, int]) -> None:
            if key not in memo:
                memo[key] = None
                self.stats["contexts"] += 1
            if key not in queued:
                queued.add(key)
                worklist.append(key)

        root = (entry_method.qualified, entry_space.default_mask)
        # the root context starts from the one concrete initial valuation,
        # so its may-0 complement is exact; callee contexts fall back to
        # the conservative "everything may be 0" default (no definite
        # claims cross a call boundary)
        all_vars = (1 << entry_space.boolprog.num_vars) - 1
        node_zeros[root] = {
            entry_space.boolprog.entry: all_vars & ~entry_space.default_mask
        }
        schedule(root)
        governor = self.governor
        try:
            while worklist:
                if governor is not None:
                    governor.tick()
                    governor.check_structures(self.stats["contexts"])
                key = worklist.popleft()
                queued.discard(key)
                if key in self._loaded:
                    # installed at its validated fixpoint; a re-analysis
                    # cannot grow it (loaded contexts only call other
                    # loaded contexts, all final), so skip the local
                    # pass — but callers that queued behind this context
                    # before a *recursive* validation installed it still
                    # need their call edges re-executed
                    for dependent in dependents.get(key, ()):
                        schedule(dependent)
                    continue
                if (
                    self.summary_store is not None
                    and key not in self._load_failed
                    and self._try_load_summary(
                        key,
                        self._entry_zeros_seed(key, root),
                        memo,
                        node_states,
                        node_zeros,
                        alarms,
                        set(),
                    )
                ):
                    for dependent in dependents.get(key, ()):
                        schedule(dependent)
                    continue
                if self._analyze_context(
                    key, memo, node_states, node_zeros, dependents, schedule,
                    alarms,
                ):
                    for dependent in dependents.get(key, ()):
                        schedule(dependent)
        except (ResourceExhausted, MemoryError) as error:
            # the alarms dict grows monotonically with the tabulation, so
            # everything recorded before the breach is a fixpoint alarm too
            raise _guard.exhausted_from(
                error,
                engine="interproc",
                subject=entry_method.qualified,
                alarms=sorted(
                    alarms.values(), key=lambda a: (a.site_id, a.instance)
                ),
                site_universe=_guard.program_sites(self.program),
                nodes_analyzed=self.stats["contexts"] - len(worklist),
                nodes_total=self.stats["contexts"],
                stats=dict(self.stats),
            )
        if self.summary_store is not None:
            self._persist_summaries(root, memo, node_states, node_zeros)
        alarm_list = sorted(
            alarms.values(), key=lambda a: (a.site_id, a.instance)
        )
        # the full tabulation fixpoint, kept for certificate emission:
        # per-context node masks plus the summary table
        self.fixpoint = {
            "entry": entry_method.qualified,
            "root": root,
            "memo": dict(memo),
            "node_states": node_states,
            "node_zeros": node_zeros,
        }
        return CertificationReport(
            subject=entry_method.qualified,
            engine="interproc",
            alarms=alarm_list,
            stats=dict(self.stats),
        )

    # -- persistent summaries ---------------------------------------------------------
    #
    # A summary is a pure function of (analysis key, fact-space key,
    # entry fingerprint): the local least fixpoint is a monotone join
    # over a finite lattice, so it is schedule-independent, and callee
    # exits feeding it are themselves keyed summaries.  The consumer
    # never trusts a stored payload — `_validate_summary` replays one
    # linear pass over the recorded masks (the certificate checker's
    # no-fixpoint discipline) and anything non-inductive is discarded
    # and recomputed.  An honest store therefore reproduces the cold
    # run's fixpoint bit-for-bit; a tampered-but-inductive payload can
    # only over-approximate it (sound, extra alarms at worst).

    def _analysis_key(self) -> str:
        """Hash of everything global to this analysis configuration."""
        if self._analysis_key_memo is None:
            # local import: repro.cert pulls in the checker, which
            # imports this module (certificate replay shares
            # `edge_transfer`) — a top-level import would cycle
            from repro.cert import model
            from repro.store.summary import summary_analysis_key

            self._analysis_key_memo = summary_analysis_key(
                spec_hash=model.spec_hash(self.spec),
                abstraction_hash=model.abstraction_hash(self.abstraction),
                prune_requires=self.prune_requires,
            )
        return self._analysis_key_memo

    def _space_key(self, qualified: str) -> str:
        """Canonical fingerprint of one procedure's derived fact space.

        Covers everything the local fixpoint and the call mappings read:
        the boolean program (instances, edges, checks, assigns, initial
        mask), the call sites, and the name environment the entry/return
        compositions consult.  Two procedures agreeing here are
        indistinguishable to the tabulation.
        """
        cached = self._space_keys.get(qualified)
        if cached is not None:
            return cached
        from repro.cert import model

        space = self.space(qualified)
        boolprog = space.boolprog
        payload = {
            "calls": [
                [
                    src,
                    dst,
                    stm.callee,
                    stm.receiver,
                    list(stm.args),
                    stm.result,
                ]
                for src, dst, stm in space.call_edges
            ],
            "edges": [
                [
                    edge.src,
                    edge.dst,
                    [
                        [c.site_id, c.line, c.op_key, c.var]
                        for c in edge.checks
                    ],
                    [
                        [a.target, list(a.sources), a.const_true]
                        for a in edge.assigns
                    ],
                    [[var, bool(value)] for var, value in edge.filters],
                ]
                for edge in boolprog.edges
            ],
            "entry": boolprog.entry,
            "exit": boolprog.exit,
            "formals": sorted(space.formals.items()),
            "ghosts": sorted(space.ghosts.items()),
            "initial": format(space.default_mask, "x"),
            "instances": [
                [inst.family, list(inst.args)]
                for inst in boolprog.instances()
            ],
            "num_vars": boolprog.num_vars,
            "phantoms": sorted(space.phantoms.items()),
            "variables": sorted(space.variables.items()),
        }
        key = model.sha256_text(model.canonical_text(payload))
        self._space_keys[qualified] = key
        return key

    def _entry_zeros_seed(self, key: Tuple[str, int], root) -> int:
        """The may-0 mask a context's entry starts from — part of the
        store key because the root context is seeded exactly while
        callee contexts start from "everything may be 0"."""
        space = self.space(key[0])
        all_vars = (1 << space.boolprog.num_vars) - 1
        if key == root:
            return all_vars & ~space.default_mask
        return all_vars

    def _context_store_key(
        self, key: Tuple[str, int], entry_zeros: int
    ) -> str:
        from repro.store.summary import summary_context_key

        return summary_context_key(
            self._analysis_key(),
            self._space_key(key[0]),
            key[1],
            entry_zeros,
        )

    def _try_load_summary(
        self,
        key,
        entry_zeros,
        memo,
        node_states,
        node_zeros,
        alarms,
        visiting,
    ) -> bool:
        """Load-or-fail one context from the summary store.

        Recursively loads the callee contexts the validation pass needs;
        a cycle (recursive client) or any missing/invalid link fails the
        whole chain and the caller computes normally.  Returns True with
        the context *installed* (memo, node masks, alarms) on success.
        """
        if key in self._loaded:
            return True
        if (
            self.summary_store is None
            or key in self._load_failed
            or key in visiting
        ):
            return False
        payload = self.summary_store.get(
            self._context_store_key(key, entry_zeros)
        )
        if payload is None:
            self._load_failed.add(key)
            return False
        visiting.add(key)
        try:
            installed = self._validate_summary(
                key,
                entry_zeros,
                payload,
                memo,
                node_states,
                node_zeros,
                alarms,
                visiting,
            )
        finally:
            visiting.discard(key)
        if not installed:
            self.stats["summary_rejects"] += 1
            self._load_failed.add(key)
        return installed

    def _validate_summary(
        self,
        key,
        entry_zeros,
        payload,
        memo,
        node_states,
        node_zeros,
        alarms,
        visiting,
    ) -> bool:
        """One linear inductiveness pass over a stored context summary.

        Mirrors the certificate checker: no fixpoint is run — every
        recorded edge transfer must already be subsumed by the recorded
        successor masks, the entry masks must cover the context's seed,
        and the recorded exit must equal the summary value.  Alarms are
        regenerated into a scratch dict and merged only on success, so a
        rejected payload leaves no trace.
        """
        from repro.store.summary import SUMMARY_FORMAT

        qualified, entry_vector = key
        space = self.space(qualified)
        boolprog = space.boolprog
        all_vars = (1 << boolprog.num_vars) - 1
        try:
            if payload.get("v") != SUMMARY_FORMAT:
                return False
            if payload.get("num_vars") != boolprog.num_vars:
                return False
            states = {
                int(node): int(mask, 16)
                for node, mask in payload["states"].items()
            }
            zeros = {
                int(node): int(mask, 16)
                for node, mask in payload["zeros"].items()
            }
            exit_mask = int(payload["exit"], 16)
        except (AttributeError, KeyError, TypeError, ValueError):
            return False
        for table in (states, zeros):
            for mask in table.values():
                if mask & ~all_vars:
                    return False
        if exit_mask & ~all_vars:
            return False
        # entry coverage: the recorded entry masks must subsume the seed
        if states.get(boolprog.entry, 0) & entry_vector != entry_vector:
            return False
        if zeros.get(boolprog.entry, 0) & entry_zeros != entry_zeros:
            return False
        calls = {(src, dst): stm for src, dst, stm in space.call_edges}
        scratch: Dict[Tuple[int, str], Alarm] = {}
        governor = self.governor
        for node in set(states) | set(zeros):
            if governor is not None:
                governor.tick()
            mask = states.get(node, 0)
            zmask = zeros.get(node, all_vars)
            for edge in boolprog.out_edges(node):
                self.stats["edge_visits"] += 1
                call_stm = calls.get((edge.src, edge.dst))
                if call_stm is not None:
                    centry, callee_space = self.call_entry_vector(
                        space, mask, call_stm
                    )
                    callee_key = (call_stm.callee, centry)
                    callee_all = (
                        1 << callee_space.boolprog.num_vars
                    ) - 1
                    # only a *validated* callee summary may discharge a
                    # call edge: computed-in-progress values are partial
                    # and would make the subsumption check vacuous
                    if not self._try_load_summary(
                        callee_key,
                        callee_all,
                        memo,
                        node_states,
                        node_zeros,
                        alarms,
                        visiting,
                    ):
                        return False
                    out = self.map_return(
                        space, mask, call_stm, callee_space,
                        memo[callee_key],
                    )
                    zout = all_vars
                else:
                    transferred = self.edge_transfer(
                        boolprog, qualified, edge, mask, zmask, scratch
                    )
                    if transferred is None:
                        continue  # the edge definitely throws: no flow
                    out, zout = transferred
                if out & ~states.get(edge.dst, 0):
                    return False
                if zout & ~zeros.get(edge.dst, 0):
                    return False
        if states.get(boolprog.exit, 0) != exit_mask:
            return False
        # inductive: install as this context's final fixpoint
        if key not in memo:
            self.stats["contexts"] += 1
        memo[key] = exit_mask
        node_states[key] = states
        node_zeros[key] = zeros
        alarms.update(scratch)
        self._loaded.add(key)
        self.stats["summaries_loaded"] += 1
        self.stats["summary_updates"] += 1
        return True

    def _persist_summaries(
        self, root, memo, node_states, node_zeros
    ) -> None:
        """Write every freshly *computed* context to the summary store
        (loaded ones are already there, byte-identical).  Best effort:
        a full disk must not fail a certification that succeeded."""
        from repro.store.summary import SUMMARY_FORMAT

        for key in sorted(memo):
            if key in self._loaded or memo[key] is None:
                continue
            qualified, entry_vector = key
            payload = {
                "entry": format(entry_vector, "x"),
                "exit": format(memo[key], "x"),
                "method": qualified,
                "num_vars": self.space(qualified).boolprog.num_vars,
                "states": {
                    str(node): format(mask, "x")
                    for node, mask in sorted(
                        node_states.get(key, {}).items()
                    )
                },
                "v": SUMMARY_FORMAT,
                "zeros": {
                    str(node): format(mask, "x")
                    for node, mask in sorted(
                        node_zeros.get(key, {}).items()
                    )
                },
            }
            try:
                self.summary_store.put(
                    self._context_store_key(
                        key, self._entry_zeros_seed(key, root)
                    ),
                    payload,
                )
            except OSError:
                return
            self.stats["summaries_stored"] += 1

    def _analyze_context(
        self, key, memo, node_states, node_zeros, dependents, schedule,
        alarms,
    ) -> bool:
        qualified, entry_vector = key
        space = self.space(qualified)
        boolprog = space.boolprog
        all_vars = (1 << boolprog.num_vars) - 1
        states = node_states.setdefault(key, {})
        states[boolprog.entry] = states.get(boolprog.entry, 0) | entry_vector
        zeros = node_zeros.setdefault(key, {})
        zeros.setdefault(boolprog.entry, all_vars)
        calls = {
            (src, dst): stm for src, dst, stm in space.call_edges
        }
        # seed every call-site source already reached: a re-analysis may be
        # triggered by an improved *callee* summary with unchanged caller
        # states, and the call edge must then be re-executed
        seeds = [boolprog.entry] + [
            src for src, _dst, _stm in space.call_edges if src in states
        ]
        local_work = self._local_worklist(qualified, boolprog)
        for seed in seeds:
            local_work.push(seed)
        governor = self.governor
        while local_work:
            if governor is not None:
                governor.tick()
            node = local_work.pop()
            mask = states.get(node, 0)
            zmask = zeros.get(node, all_vars)
            for edge in boolprog.out_edges(node):
                self.stats["edge_visits"] += 1
                call_stm = calls.get((edge.src, edge.dst))
                if call_stm is not None:
                    out = self._call_transfer(
                        key, space, mask, call_stm, memo, dependents,
                        schedule,
                    )
                    if out is None:
                        continue  # callee summary not yet available
                    zout = all_vars  # callee effects: nothing stays definite
                else:
                    transferred = self.edge_transfer(
                        boolprog, qualified, edge, mask, zmask, alarms
                    )
                    if transferred is None:
                        continue
                    out, zout = transferred
                old = states.get(edge.dst, 0)
                old_zero = zeros.get(edge.dst, 0)
                merged = old | out
                merged_zero = old_zero | zout
                if merged != old or merged_zero != old_zero:
                    states[edge.dst] = merged
                    zeros[edge.dst] = merged_zero
                    local_work.push(edge.dst)
        exit_mask = states.get(boolprog.exit, 0)
        previous = memo.get(key)
        merged = exit_mask if previous is None else previous | exit_mask
        if previous is None or merged != previous:
            memo[key] = merged
            self.stats["summary_updates"] += 1
            return True
        return False

    def edge_transfer(
        self, boolprog, qualified, edge, mask, zmask, alarms
    ) -> Optional[Tuple[int, int]]:
        """The non-call boolean edge transfer: check alarms, prune, assign.

        Returns the (may-1, may-0) masks after the edge, or ``None`` when
        the edge definitely throws and kills every execution.  Shared by
        the tabulation and the certificate checker so both replay exactly
        the same semantics.
        """
        out = mask
        zout = zmask
        killed = False
        for check in edge.checks:
            if out >> check.var & 1:
                alarm_key = (
                    check.site_id,
                    str(boolprog.instance(check.var)),
                )
                alarms[alarm_key] = Alarm(
                    site_id=check.site_id,
                    line=check.line,
                    op_key=check.op_key,
                    instance=str(boolprog.instance(check.var)),
                    context=qualified,
                )
            if self.prune_requires:
                if not zout >> check.var & 1:
                    # the checked predicate is definitely 1: every
                    # execution throws here, so nothing flows past this
                    # edge (mirrors the FDS and relational solvers)
                    killed = True
                out &= ~(1 << check.var)
                zout |= 1 << check.var
        if killed:
            return None
        updated = out
        zupdated = zout
        for assign in edge.assigns:
            bit = 1 << assign.target
            value = assign.const_true or any(
                out >> s & 1 for s in assign.sources
            )
            zvalue = not assign.const_true and all(
                zout >> s & 1 for s in assign.sources
            )
            updated = updated | bit if value else updated & ~bit
            zupdated = zupdated | bit if zvalue else zupdated & ~bit
        return updated, zupdated

    def call_entry_vector(
        self, caller_space, caller_mask, stm
    ) -> Tuple[int, "ProcSpace"]:
        """Map the caller's mask through a call statement to the callee's
        entry vector (binding formal->actual visibility on the way).
        Leaves ``_formal_visible`` set for a following ``map_return``."""
        callee_space = self.space(stm.callee)
        minfo = callee_space.method
        self._formal_visible = {}
        if stm.receiver is not None and not minfo.is_static:
            self._formal_visible["this"] = stm.receiver
        for (pname, _pt), actual in zip(minfo.params, stm.args):
            self._formal_visible[pname] = actual
        entry_vector = self.map_entry(
            caller_space, caller_mask, stm, callee_space
        )
        return entry_vector, callee_space

    def _call_transfer(
        self, caller_key, caller_space, caller_mask, stm, memo, dependents,
        schedule,
    ) -> Optional[int]:
        entry_vector, callee_space = self.call_entry_vector(
            caller_space, caller_mask, stm
        )
        callee_key = (stm.callee, entry_vector)
        if callee_key not in memo:
            schedule(callee_key)  # a brand-new context
        dependents.setdefault(callee_key, set()).add(caller_key)
        exit_mask = memo[callee_key]
        if exit_mask is None:
            return None
        return self.map_return(
            caller_space, caller_mask, stm, callee_space, exit_mask
        )
