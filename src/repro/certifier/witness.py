"""Witness traces for FDS alarms.

The may-1 analysis is a reachability computation, so every alarm has a
*provenance chain*: the sequence of updates that first made the checked
predicate possibly-true — e.g. for Fig. 3's line-10 alarm::

    stale[i2] may be 1 at the i2.next() check because
      line 9: stale[i2] := stale[i2] | mutx[i1, i2]   (mutx[i1, i2] was 1)
      line 6: mutx[i1, i2] := iterof[i1, v]           (iterof[i1, v] was 1)
      line 5: iterof[i1, v] := same[v, v]             (same[v, v] was 1)
      same[v, v] holds initially

Chains are recovered from a provenance map recorded during the solver's
worklist iteration (first cause wins, so chains are acyclic) and attached
to alarms by :func:`explain`.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.certifier.boolprog import BoolEdge, BoolProgram

#: how a (node, var) pair first became possibly-1
#: (source node, source var or None, via edge or None)
Cause = Tuple[int, Optional[int], Optional[BoolEdge]]


@dataclass
class WitnessStep:
    line: int
    target: str
    source: Optional[str]  # None for constants / initial facts

    def __str__(self) -> str:
        prefix = f"line {self.line}: " if self.line else ""
        if self.source is None:
            return f"{prefix}{self.target} := 1"
        if self.source == self.target:
            return f"{prefix}{self.target} carried over"
        return f"{prefix}{self.target} := … | {self.source}"


def trace(
    program: BoolProgram,
    provenance: Dict[Tuple[int, int], Cause],
    node: int,
    var: int,
    max_steps: int = 24,
) -> List[WitnessStep]:
    """Walk the provenance map back to an origin fact."""
    steps: List[WitnessStep] = []
    current: Optional[Tuple[int, int]] = (node, var)
    seen = set()
    while current is not None and len(steps) < max_steps:
        if current in seen:
            break
        seen.add(current)
        cause = provenance.get(current)
        if cause is None:
            if current[1] in program.initially_true:
                steps.append(
                    WitnessStep(
                        0, str(program.instance(current[1])), None
                    )
                )
            break
        src_node, src_var, edge = cause
        target_name = str(program.instance(current[1]))
        if src_var is None:
            steps.append(
                WitnessStep(edge.line if edge else 0, target_name, None)
            )
            current = None
        elif src_var == current[1] and src_node != current[0]:
            # plain propagation: skip to keep traces readable
            current = (src_node, src_var)
        else:
            steps.append(
                WitnessStep(
                    edge.line if edge else 0,
                    target_name,
                    str(program.instance(src_var)),
                )
            )
            current = (src_node, src_var)
    return steps


def format_trace(steps: List[WitnessStep]) -> str:
    if not steps:
        return ""
    return " <= ".join(str(step) for step in steps)
