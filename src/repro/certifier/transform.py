"""Client transformation: Jlite CFG → boolean program (Section 4.3, Fig. 6).

Component-reference declarations are replaced by the family instances over
the method's component-typed variables (locals, temps, and statics), and
every component interaction — calls, constructor calls, reference copies,
null assignments — is replaced by the corresponding instantiation of the
derived method abstraction, selected by the *coincidence pattern* of each
instance's arguments against the operation's operands.

This module implements the intraprocedural transformation for SCMP
clients; :mod:`repro.certifier.interproc` builds per-procedure boolean
programs with the same machinery and links them at call/return edges.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.certifier.boolprog import (
    BoolEdge,
    BoolProgram,
    Check,
    Instance,
    ParallelAssign,
)
from repro.derivation.predicates import (
    DerivedAbstraction,
    Family,
    GenArg,
    InstanceRef,
    OpArg,
    instance_pattern,
)
from repro.lang.cfg import (
    CFG,
    SAssume,
    SCallClient,
    SCallComp,
    SCopy,
    SLoad,
    SNull,
    SStore,
)
from repro.lang.types import Program
from repro.logic.formula import TRUE
from repro.runtime.trace import phase as trace_phase
from repro.logic.terms import Base


class TransformError(Exception):
    """Raised when a client violates the transformation's assumptions
    (e.g. component references in instance fields for the SCMP pipeline)."""


def _all_tuples(
    variables: Dict[str, str], sorts: Sequence[str]
) -> Iterable[Tuple[str, ...]]:
    """All tuples of client variables matching a family's sorts."""
    pools = []
    for sort in sorts:
        pool = [name for name, type_ in variables.items() if type_ == sort]
        pools.append(pool)
    if any(not pool for pool in pools):
        return
    import itertools

    yield from itertools.product(*pools)


def reflexively_true(family: Family) -> bool:
    """True when the family's formula folds to TRUE once all of its
    variables are unified — the ``same(v, v) = 1`` simplification of
    Fig. 8, also the correct value for an all-null instance."""
    if family.arity == 0:
        return False
    from repro.derivation.derive import rename_bases

    unified = Base("$u", family.vars[0].sort)
    mapping = {var: unified for var in family.vars}
    return rename_bases(family.formula, mapping) is TRUE


def family_mentions_mutable_field(family: Family, spec) -> bool:
    """True when the family's defining formula reads a field classified
    mutable by the specification (Section 6 mutability)."""
    from repro.logic.formula import EqAtom, map_atoms
    from repro.logic.terms import Field

    mutable = spec.mutable_fields()
    hit = []

    def scan_term(term) -> None:
        while isinstance(term, Field):
            base = term.base
            base_sort = None
            if isinstance(base, Base):
                base_sort = base.sort
            elif isinstance(base, Field):
                base_sort = _term_sort(base, spec)
            if base_sort is not None and (base_sort, term.field) in mutable:
                hit.append(True)
            term = term.base

    def scan(atom):
        if isinstance(atom, EqAtom):
            scan_term(atom.lhs)
            scan_term(atom.rhs)
        return atom

    map_atoms(family.formula, scan)
    return bool(hit)


def _term_sort(term, spec) -> Optional[str]:
    from repro.logic.terms import Field

    if isinstance(term, Base):
        return term.sort
    if isinstance(term, Field):
        base_sort = _term_sort(term.base, spec)
        if base_sort is None or not spec.is_component_type(base_sort):
            return None
        try:
            return spec.field_type(base_sort, term.field)
        except Exception:
            return None
    return None


class ClientTransformer:
    """Builds boolean programs from client methods."""

    def __init__(
        self,
        program: Program,
        abstraction: DerivedAbstraction,
        *,
        on_client_call: str = "error",
    ) -> None:
        if on_client_call not in ("error", "havoc", "skip"):
            raise ValueError(f"bad on_client_call={on_client_call!r}")
        self.program = program
        self.abstraction = abstraction
        self.spec = abstraction.spec
        self.on_client_call = on_client_call
        #: symbolic transforms depend only on (abstraction, op, binding,
        #: in-scope variables) — across a large client the same local
        #: names recur in method after method, so both memos hit heavily
        self._instances_memo: Dict[tuple, List[Instance]] = {}
        self._comp_op_memo: Dict[tuple, tuple] = {}

    # -- instance universe -----------------------------------------------------

    def instances_for(self, variables: Dict[str, str]) -> List[Instance]:
        key = tuple(sorted(variables.items()))
        found = self._instances_memo.get(key)
        if found is None:
            found = []
            for family in self.abstraction.families:
                for args in _all_tuples(variables, family.sorts):
                    found.append(Instance(family.name, args))
            self._instances_memo[key] = found
        return found

    # -- the transformation ------------------------------------------------------

    def transform_method(self, method: str) -> BoolProgram:
        minfo = self.program.method(method)
        cfg = minfo.cfg
        assert cfg is not None
        variables = self.program.component_vars(method)
        return self.transform_cfg(cfg, variables)

    def transform_inlined(self, inlined) -> BoolProgram:
        """Transform a whole-program inlined CFG (the Section 8
        inlining reference for recursion-free clients)."""
        with trace_phase("transform", target="boolprog") as trace_meta:
            boolprog = self.transform_cfg(
                inlined.cfg, inlined.component_vars()
            )
            trace_meta.update(
                variables=boolprog.num_vars, edges=len(boolprog.edges)
            )
        return boolprog

    def transform_cfg(
        self, cfg: CFG, variables: Dict[str, str]
    ) -> BoolProgram:
        self._check_shallow(cfg)
        boolprog = BoolProgram(cfg.method)
        boolprog.entry = cfg.entry
        boolprog.exit = cfg.exit
        for instance in self.instances_for(variables):
            index = boolprog.variable(instance)
            if (
                len(set(instance.args)) <= 1
                and reflexively_true(self.abstraction.family(instance.family))
            ):
                boolprog.initially_true.append(index)
        for edge in cfg.edges:
            checks, assigns, filters = self.transform_statement(
                edge.stm, boolprog, variables
            )
            boolprog.add_edge(
                BoolEdge(
                    edge.src,
                    edge.dst,
                    tuple(checks),
                    tuple(assigns),
                    tuple(filters),
                    line=getattr(edge.stm, "line", 0),
                )
            )
        return boolprog

    def _check_shallow(self, cfg: CFG) -> None:
        for edge in cfg.edges:
            stm = edge.stm
            if isinstance(stm, (SLoad, SStore)) and self.spec.is_component_type(
                stm.type
            ):
                raise TransformError(
                    f"{cfg.method}: component reference stored in the heap "
                    f"at line {stm.line} — not an SCMP client; use the "
                    f"first-order (TVLA) pipeline of Section 5"
                )

    # -- per-statement transformation -----------------------------------------------

    def transform_statement(
        self,
        stm,
        boolprog: BoolProgram,
        variables: Dict[str, str],
    ) -> Tuple[List[Check], List[ParallelAssign], List[Tuple[int, bool]]]:
        checks: List[Check] = []
        assigns: List[ParallelAssign] = []
        filters: List[Tuple[int, bool]] = []
        if isinstance(stm, SCallComp):
            self._comp_op(
                stm.op_key,
                stm.binding_map,
                stm.site_id,
                stm.line,
                boolprog,
                variables,
                checks,
                assigns,
            )
        elif isinstance(stm, SCopy) and self.spec.is_component_type(stm.type):
            if stm.dst != stm.src:
                self._comp_op(
                    f"copy {stm.type}",
                    {"dst": stm.dst, "src": stm.src},
                    site_id=-1,
                    line=stm.line,
                    boolprog=boolprog,
                    variables=variables,
                    checks=checks,
                    assigns=assigns,
                )
        elif isinstance(stm, SNull) and self.spec.is_component_type(stm.type):
            self._null_assign(stm.dst, boolprog, variables, assigns)
        elif isinstance(stm, SAssume):
            self._assume(stm, boolprog, variables, filters)
        elif isinstance(stm, SCallClient):
            if self.on_client_call == "error":
                raise TransformError(
                    f"client call {stm} at line {stm.line}: the "
                    f"intraprocedural SCMP certifier analyses single "
                    f"methods; use the interprocedural certifier "
                    f"(Section 8)"
                )
            if self.on_client_call == "havoc":
                self._havoc_statics(boolprog, variables, assigns)
        # SNop / SReturn / SNewClient / opaque statements: no effect
        return checks, assigns, filters

    def _comp_op(
        self,
        op_key: str,
        binding: Dict[str, str],
        site_id: int,
        line: int,
        boolprog: BoolProgram,
        variables: Dict[str, str],
        checks: List[Check],
        assigns: List[ParallelAssign],
    ) -> None:
        memo_key = (
            op_key,
            tuple(sorted(binding.items())),
            tuple(sorted(variables.items())),
        )
        symbolic = self._comp_op_memo.get(memo_key)
        if symbolic is None:
            op = self.spec.operation(op_key)
            op_abs = self.abstraction.operations[op_key]
            check_instances = tuple(
                Instance(
                    check_ref.family,
                    tuple(
                        binding[arg.name]  # type: ignore[union-attr]
                        for arg in check_ref.args
                    ),
                )
                for check_ref in op_abs.checks
            )
            assign_triples = []
            for instance in self.instances_for(variables):
                pattern, slot_vars = instance_pattern(
                    op, self.spec, binding, instance.args
                )
                case = op_abs.case_for(instance.family, pattern)
                if case is None:
                    raise TransformError(
                        f"no derived update case for {instance} against "
                        f"{op_key} (pattern {pattern})"
                    )
                if case.identity:
                    continue
                sources = tuple(
                    self._instantiate(ref, binding, slot_vars)
                    for ref in case.rhs_instances
                )
                assign_triples.append((instance, sources, case.rhs_true))
            symbolic = (check_instances, tuple(assign_triples))
            self._comp_op_memo[memo_key] = symbolic
        check_instances, assign_triples = symbolic
        for instance in check_instances:
            checks.append(
                Check(site_id, line, op_key, boolprog.variable(instance))
            )
        for instance, sources, rhs_true in assign_triples:
            assigns.append(
                ParallelAssign(
                    boolprog.variable(instance),
                    tuple(boolprog.variable(s) for s in sources),
                    rhs_true,
                )
            )

    def _instantiate(
        self,
        ref: InstanceRef,
        binding: Dict[str, str],
        slot_vars: Dict[int, str],
    ) -> Instance:
        args = []
        for arg in ref.args:
            if isinstance(arg, OpArg):
                if arg.name not in binding:
                    raise TransformError(
                        f"update references operand {arg.name} with no "
                        f"client binding"
                    )
                args.append(binding[arg.name])
            else:
                assert isinstance(arg, GenArg)
                args.append(slot_vars[arg.slot])
        return Instance(ref.family, tuple(args))

    def _null_assign(
        self,
        dst: str,
        boolprog: BoolProgram,
        variables: Dict[str, str],
        assigns: List[ParallelAssign],
    ) -> None:
        """``dst = null``: every instance mentioning ``dst`` becomes 0,
        except reflexively-true instances whose arguments are all ``dst``
        (``same(x, x)`` holds for null too)."""
        for instance in self.instances_for(variables):
            if dst not in instance.args:
                continue
            family = self.abstraction.family(instance.family)
            value_true = (
                set(instance.args) == {dst} and reflexively_true(family)
            )
            assigns.append(
                ParallelAssign(
                    boolprog.variable(instance), (), value_true
                )
            )

    def _assume(
        self,
        stm: SAssume,
        boolprog: BoolProgram,
        variables: Dict[str, str],
        filters: List[Tuple[int, bool]],
    ) -> None:
        """Relational-only refinement: ``assume v == w`` filters on a
        tracked instance whose defining formula is exactly ``x0 == x1``
        (the `same` family).  The FDS solver ignores filters — sound,
        since ignoring an assume only adds paths."""
        if stm.rhs == "null":
            return
        for family in self.abstraction.families:
            if family.arity != 2:
                continue
            from repro.logic.formula import EqAtom

            if not isinstance(family.formula, EqAtom):
                continue
            if not (
                isinstance(family.formula.lhs, Base)
                and isinstance(family.formula.rhs, Base)
            ):
                continue
            sort = family.sorts[0]
            if variables.get(stm.lhs) != sort or variables.get(stm.rhs) != sort:
                continue
            var = boolprog.variable(
                Instance(family.name, (stm.lhs, stm.rhs))
            )
            filters.append((var, stm.equal))

    def _havoc_statics(
        self,
        boolprog: BoolProgram,
        variables: Dict[str, str],
        assigns: List[ParallelAssign],
    ) -> None:
        """Conservative treatment of an unanalyzed client call.

        Two effects are possible inside the callee: static component
        variables may be reassigned (invalidating every instance that
        mentions a static), and collections reachable from statics or the
        heap may be mutated (flipping any instance whose defining formula
        reads a *mutable* component field, e.g. ``stale``).  Both are
        over-approximated by letting the affected instances become 1.
        Sound only for may-1 alarms; used by the ``havoc`` policy."""
        static_names = set(self.program.statics)
        for instance in self.instances_for(variables):
            family = self.abstraction.family(instance.family)
            affected = any(
                arg in static_names for arg in instance.args
            ) or family_mentions_mutable_field(family, self.spec)
            if affected:
                index = boolprog.variable(instance)
                assigns.append(
                    ParallelAssign(index, (index,), const_true=True)
                )
