"""Stages 2+3 of the pipeline for SCMP clients (Sections 4.3, 8).

The derived abstraction is instantiated over a client's component-typed
variables, turning the client into a *boolean program* (Fig. 6) whose
assignments all have the special form ``p0 := p1 ∨ … ∨ pk`` / ``p := 0`` /
``p := 1``.  Three solvers then answer "may this ``requires ¬p`` fail?":

* :mod:`repro.certifier.fds` — the paper's headline engine: a precise
  polynomial-time (O(E·B²)) independent-attribute analysis whose result
  equals the meet-over-all-paths solution for the alarm question.
* :mod:`repro.certifier.relational` — an exponential relational
  (powerset-of-valuations) solver used to validate the FDS precision
  claim and for the Rule 2 ablation.
* :mod:`repro.certifier.interproc` — the Section 8 context-sensitive
  interprocedural solver (IFDS-style tabulation with callee summaries).
"""

from repro.certifier.boolprog import BoolProgram
from repro.certifier.fds import FdsSolver
from repro.certifier.interproc import InterproceduralCertifier
from repro.certifier.relational import RelationalSolver
from repro.certifier.report import Alarm, CertificationReport
from repro.certifier.transform import ClientTransformer, TransformError

__all__ = [
    "Alarm",
    "BoolProgram",
    "CertificationReport",
    "ClientTransformer",
    "FdsSolver",
    "InterproceduralCertifier",
    "RelationalSolver",
    "TransformError",
]
