"""The precise polynomial-time SCMP solver (Section 4.3).

Every assignment in the transformed client has the form ``p0 := p1 ∨ … ∨
pk``, ``p := 0`` or ``p := 1`` — crucially, *no negation on the right-hand
side*.  "May ``p`` be 1 at point ``n``" is therefore a union-distributive
reachability property: a path witnessing ``pi = 1`` immediately before the
statement also witnesses ``p0 = 1`` immediately after it, so per-variable
may-1 sets lose nothing against the relational collecting semantics.  This
is the engine-level content of the paper's claim that the derived
abstraction "enables the use of an efficient independent attribute
analysis without losing the precision of relational analysis"
(Section 4.6), and it is property-tested against exhaustive path
enumeration in ``tests/test_fds_precision.py``.

States are bitmasks (one bit per instance: "may be 1 here"), so the
worklist iteration runs in O(E·B²/w) — the paper's O(E·B²) with word-level
parallelism.

The solver also tracks a conservative *may-0* bit per variable (``p`` may
be 0): union-distributivity does not hold for may-0 (``p0 = 0`` needs all
``pi = 0`` on the same path), so may-0 is over-approximated independently;
it is used only to flag *definite* errors (alarm sites where the checked
predicate must be 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple

from repro.certifier.boolprog import BoolEdge, BoolProgram
from repro.certifier.report import Alarm, CertificationReport
from repro.runtime import guard as _guard
from repro.runtime.guard import ResourceExhausted, ResourceGovernor
from repro.runtime.trace import phase as trace_phase
from repro.util.worklist import make_worklist


@dataclass
class BitmaskSeed:
    """Warm-start for :meth:`FdsSolver.solve` (incremental
    recertification): the parent fixpoint's per-node masks on the clean
    region (mapped to this program's node ids) plus the clean-frontier
    nodes to schedule first.  Merges are bitwise ORs, so re-iterating
    from a predecessor-closed slice of the old fixpoint reaches exactly
    the cold fixpoint, and alarms are collected post-hoc from the final
    masks either way."""

    may_one: Dict[int, int]
    may_zero: Dict[int, int]
    frontier: Tuple[int, ...] = ()


@dataclass
class FdsResult:
    """Per-node may-1 / may-0 bitmasks plus the alarm list."""

    program: BoolProgram
    may_one: Dict[int, int]
    may_zero: Dict[int, int]
    alarms: List[Alarm]
    iterations: int
    #: how each (node, var) first became possibly-1 (witness traces)
    provenance: Dict[Tuple[int, int], tuple] = field(default_factory=dict)

    def may_be_one(self, node: int, var: int) -> bool:
        return bool(self.may_one.get(node, 0) >> var & 1)

    def may_be_zero(self, node: int, var: int) -> bool:
        return bool(self.may_zero.get(node, 0) >> var & 1)


class FdsSolver:
    """Worklist solver for the independent-attribute (FDS) analysis."""

    def __init__(
        self,
        *,
        prune_requires: bool = True,
        worklist: str = "rpo",
        governor: Optional[ResourceGovernor] = None,
    ) -> None:
        #: assume a checked predicate is 0 after a passing check — the
        #: component throws on violation, so later states only arise from
        #: passing executions (the A2 ablation toggles this)
        self.prune_requires = prune_requires
        #: node-scheduling strategy: "rpo" (reverse postorder, fewer
        #: iterations) or "fifo" (the seed behaviour)
        self.worklist_order = worklist
        #: cooperative resource budgets, polled once per iteration
        self.governor = governor

    def solve(
        self, program: BoolProgram, seed: Optional[BitmaskSeed] = None
    ) -> FdsResult:
        governor = self.governor
        init_one = program.initial_mask()
        all_vars = (1 << program.num_vars) - 1
        init_zero = all_vars & ~init_one
        provenance: Dict[Tuple[int, int], tuple] = {}
        worklist = make_worklist(
            self.worklist_order,
            program.entry,
            lambda n: [e.dst for e in program.out_edges(n)],
        )
        if seed is None:
            may_one: Dict[int, int] = {program.entry: init_one}
            may_zero: Dict[int, int] = {program.entry: init_zero}
            worklist.push(program.entry)
        else:
            may_one = dict(seed.may_one)
            may_zero = dict(seed.may_zero)
            for node in seed.frontier:
                worklist.push(node)
            if program.entry not in may_one:
                may_one[program.entry] = init_one
                may_zero[program.entry] = init_zero
                worklist.push(program.entry)
        iterations = 0
        try:
            while worklist:
                if governor is not None:
                    governor.tick()
                node = worklist.pop()
                iterations += 1
                one = may_one.get(node, 0)
                zero = may_zero.get(node, 0)
                for edge in program.out_edges(node):
                    transferred = self._transfer(edge, one, zero)
                    if transferred is None:
                        continue  # definite failure: the edge kills all executions
                    new_one, new_zero = transferred
                    old_one = may_one.get(edge.dst, 0)
                    old_zero = may_zero.get(edge.dst, 0)
                    merged_one = old_one | new_one
                    merged_zero = old_zero | new_zero
                    fresh = merged_one & ~old_one
                    if fresh:
                        self._record_provenance(
                            provenance, edge, one, fresh
                        )
                    if merged_one != old_one or merged_zero != old_zero:
                        may_one[edge.dst] = merged_one
                        may_zero[edge.dst] = merged_zero
                        worklist.push(edge.dst)
        except (ResourceExhausted, MemoryError) as error:
            # salvage: mid-run may-1 sets are a subset of the fixpoint's,
            # so alarms collected now persist into the completed run
            raise _guard.exhausted_from(
                error,
                engine="fds",
                subject=program.name,
                alarms=self._collect_alarms(
                    program, may_one, may_zero, provenance
                ),
                site_universe=_guard.boolprog_sites(program),
                nodes_analyzed=len(may_one),
                nodes_total=_node_count(program),
                stats={"iterations": iterations},
            )
        alarms = self._collect_alarms(
            program, may_one, may_zero, provenance
        )
        return FdsResult(
            program, may_one, may_zero, alarms, iterations, provenance
        )

    def _record_provenance(
        self,
        provenance: Dict,
        edge: BoolEdge,
        source_mask: int,
        fresh: int,
    ) -> None:
        """Record how each freshly-1 bit at ``edge.dst`` arose."""
        assigned = {a.target: a for a in edge.assigns}
        var = 0
        while fresh:
            if fresh & 1:
                key = (edge.dst, var)
                if key not in provenance:
                    assign = assigned.get(var)
                    if assign is None:
                        cause = (edge.src, var, edge)  # propagation
                    elif assign.const_true:
                        cause = (edge.src, None, edge)
                    else:
                        source = next(
                            (
                                s
                                for s in assign.sources
                                if source_mask >> s & 1
                            ),
                            None,
                        )
                        cause = (edge.src, source, edge)
                    provenance[key] = cause
            fresh >>= 1
            var += 1

    # -- transfer functions ------------------------------------------------------

    def _transfer(
        self, edge: BoolEdge, one: int, zero: int
    ) -> Optional[Tuple[int, int]]:
        if self.prune_requires:
            for check in edge.checks:
                if not zero >> check.var & 1:
                    # the checked predicate is 1 on every execution
                    # reaching this edge: the component definitely
                    # throws, so no execution survives the operation
                    # (mirrors the relational solver dropping every
                    # failing valuation)
                    return None
                one &= ~(1 << check.var)
                zero |= 1 << check.var
        new_one, new_zero = one, zero
        for assign in edge.assigns:
            bit = 1 << assign.target
            target_one = assign.const_true or any(
                one >> source & 1 for source in assign.sources
            )
            # may-0: constant 1 forces 1; otherwise 0 is possible whenever
            # every source may (independently) be 0 — an over-approximation
            target_zero = not assign.const_true and all(
                zero >> source & 1 for source in assign.sources
            )
            if target_one:
                new_one |= bit
            else:
                new_one &= ~bit
            if target_zero:
                new_zero |= bit
            else:
                new_zero &= ~bit
        return new_one, new_zero

    def _collect_alarms(
        self,
        program: BoolProgram,
        may_one: Dict[int, int],
        may_zero: Dict[int, int],
        provenance: Optional[Dict] = None,
    ) -> List[Alarm]:
        from repro.certifier.witness import format_trace, trace

        alarms: List[Alarm] = []
        seen: Set[Tuple[int, int]] = set()
        for edge in program.edges:
            one = may_one.get(edge.src)
            if one is None:
                continue  # unreachable
            zero = may_zero.get(edge.src, 0)
            for check in edge.checks:
                if not one >> check.var & 1:
                    continue
                key = (check.site_id, check.var)
                if key in seen:
                    continue
                seen.add(key)
                chain = None
                if provenance is not None:
                    steps = trace(
                        program, provenance, edge.src, check.var
                    )
                    chain = format_trace(steps) or None
                alarms.append(
                    Alarm(
                        site_id=check.site_id,
                        line=check.line,
                        op_key=check.op_key,
                        instance=str(program.instance(check.var)),
                        definite=not zero >> check.var & 1,
                        trace=chain,
                    )
                )
        alarms.sort(key=lambda a: (a.site_id, a.instance))
        return alarms


def _node_count(program: BoolProgram) -> int:
    nodes = {program.entry}
    for edge in program.edges:
        nodes.add(edge.src)
        nodes.add(edge.dst)
    return len(nodes)


def certify_fds(
    program: BoolProgram,
    *,
    prune_requires: bool = True,
    worklist: str = "rpo",
    governor: Optional[ResourceGovernor] = None,
    result_sink: Optional[List[FdsResult]] = None,
    seed: Optional[BitmaskSeed] = None,
) -> CertificationReport:
    """Convenience wrapper returning a report for one boolean program.

    ``result_sink``, when given, receives the full :class:`FdsResult` so
    that certificate emission can read the fixpoint annotation without
    widening the report type.
    """
    with trace_phase("fixpoint", engine="fds") as trace_meta:
        result = FdsSolver(
            prune_requires=prune_requires,
            worklist=worklist,
            governor=governor,
        ).solve(program, seed)
        trace_meta.update(
            iterations=result.iterations, variables=program.num_vars
        )
    if result_sink is not None:
        result_sink.append(result)
    return CertificationReport(
        subject=program.name,
        engine="fds",
        alarms=result.alarms,
        stats={
            "iterations": result.iterations,
            "variables": program.num_vars,
            "edges": len(program.edges),
        },
    )
