"""The unified JSON result envelope.

Every surface that reports a certification or check outcome as JSON —
``repro certify --json``, ``repro check --json``, the batch runtime's
per-job records, and the HTTP responses of :mod:`repro.serve` — builds
the same five-section shape from the helpers here instead of hand-rolling
its own dict:

::

    {
      "verdict":     {subject, engine, status, certified, partial, ...},
      "alarms":      [ {site_id, line, op_key, instance, ...}, ... ],
      "certificate": {hash, bytes, path, cached, ...} | null,
      "governor":    {breach, salvaged, unknown_sites, degraded_to} | null,
      "timings":     {seconds, phases: {parse: ..., fixpoint: ..., ...}}
    }

Sections are plain JSON-safe dicts; serialize them with ``sort_keys``.
``verdict.status`` is ``"ok"`` for a completed run, ``"breached"`` for a
governor-salvaged one, or an error kind; checker results use the
:class:`~repro.cert.check.CheckResult` kind (``"accepted"`` /
reject kinds).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional

from repro.cert import model

#: the envelope's (sorted) top-level keys
ENVELOPE_KEYS = ("alarms", "certificate", "governor", "timings", "verdict")


def make_envelope(
    *,
    verdict: Dict[str, object],
    alarms: Iterable[Mapping[str, object]] = (),
    certificate: Optional[Dict[str, object]] = None,
    governor: Optional[Dict[str, object]] = None,
    timings: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """Assemble the five envelope sections (insertion order is sorted
    key order, so ``json.dumps(..., sort_keys=True)`` is a no-op
    reordering)."""
    return {
        "alarms": list(alarms),
        "certificate": certificate,
        "governor": governor,
        "timings": timings if timings is not None else timings_section(),
        "verdict": verdict,
    }


# -- sections ---------------------------------------------------------------


def verdict_section(
    *,
    subject: str,
    engine: str,
    certified: Optional[bool],
    status: str = "ok",
    partial: bool = False,
    **extra: object,
) -> Dict[str, object]:
    verdict: Dict[str, object] = {
        "subject": subject,
        "engine": engine,
        "status": status,
        "certified": certified,
        "partial": bool(partial),
    }
    verdict.update(extra)
    return verdict


def governor_section(
    *,
    breach: Optional[str] = None,
    salvaged: Optional[int] = None,
    unknown_sites: Optional[int] = None,
    degraded_to: Optional[str] = None,
    **extra: object,
) -> Optional[Dict[str, object]]:
    """``None`` when no budget tripped — the envelope's ``governor``
    slot only materializes for governed runs that breached."""
    if (
        breach is None
        and salvaged is None
        and unknown_sites is None
        and degraded_to is None
        and not extra
    ):
        return None
    section: Dict[str, object] = {
        "breach": breach,
        "salvaged": salvaged,
        "unknown_sites": unknown_sites,
        "degraded_to": degraded_to,
    }
    section.update(extra)
    return section


def phase_totals(events: Iterable[object]) -> Dict[str, float]:
    """Seconds per trace phase, summed (events are
    :class:`repro.runtime.trace.TraceEvent`)."""
    totals: Dict[str, float] = {}
    for event in events:
        phase = getattr(event, "phase", None)
        if phase is None:
            continue
        totals[phase] = totals.get(phase, 0.0) + float(
            getattr(event, "seconds", 0.0)
        )
    return totals


def timings_section(
    *,
    seconds: Optional[float] = None,
    phases: Optional[Mapping[str, float]] = None,
    events: Optional[Iterable[object]] = None,
) -> Dict[str, object]:
    if phases is None and events is not None:
        phases = phase_totals(events)
    return {
        "seconds": round(seconds, 6) if seconds is not None else None,
        "phases": {
            name: round(value, 6) for name, value in sorted((phases or {}).items())
        },
    }


def certificate_section(
    certificate=None,
    *,
    path: Optional[str] = None,
    cached: Optional[bool] = None,
    cert_hash: Optional[str] = None,
    cert_bytes: Optional[int] = None,
    **extra: object,
) -> Optional[Dict[str, object]]:
    """Describe an emitted/stored certificate (never embeds the full
    payload — responses point at it by content hash and/or path).

    ``cert_hash``/``cert_bytes`` let callers that already know the
    content address (e.g. a store hit) skip re-serializing the payload.
    """
    if certificate is None and path is None and not extra:
        return None
    section: Dict[str, object] = {}
    if certificate is not None:
        if cert_hash is None or cert_bytes is None:
            text = certificate.text()
            cert_hash = model.sha256_text(text)
            cert_bytes = len(text)
        section["hash"] = cert_hash
        section["bytes"] = cert_bytes
        section["engine"] = certificate.engine
        section["partial"] = certificate.partial
    section["path"] = path
    if cached is not None:
        section["cached"] = bool(cached)
    section.update(extra)
    return section


# -- convenience builders ---------------------------------------------------

#: report.stats keys that feed the governor section
_GOVERNOR_STATS = ("breach", "salvaged", "degraded_to")


def report_envelope(
    report,
    *,
    status: Optional[str] = None,
    seconds: Optional[float] = None,
    events: Optional[Iterable[object]] = None,
    certificate_path: Optional[str] = None,
    cached: Optional[bool] = None,
) -> Dict[str, object]:
    """The envelope for a live :class:`~repro.certifier.report.CertificationReport`."""
    stats = report.stats or {}
    partial = bool(stats.get("partial")) or stats.get("breach") is not None
    return make_envelope(
        verdict=verdict_section(
            subject=report.subject,
            engine=report.engine,
            certified=report.certified,
            status=status or ("breached" if stats.get("breach") else "ok"),
            partial=partial,
        ),
        alarms=model.alarms_to_json(report.alarms),
        certificate=certificate_section(
            report.certificate, path=certificate_path, cached=cached
        ),
        governor=governor_section(
            breach=stats.get("breach"),
            salvaged=stats.get("salvaged"),
            unknown_sites=stats.get("sites_unresolved"),
            degraded_to=stats.get("degraded_to"),
        ),
        timings=timings_section(seconds=seconds, events=events),
    )


def check_envelope(
    result,
    *,
    certificate=None,
    path: Optional[str] = None,
    cached: Optional[bool] = None,
    seconds: Optional[float] = None,
    events: Optional[Iterable[object]] = None,
    cert_hash: Optional[str] = None,
    cert_bytes: Optional[int] = None,
) -> Dict[str, object]:
    """The envelope for a :class:`~repro.cert.check.CheckResult`.

    When the checked certificate is at hand its *claimed* verdict and
    alarm set fill the verdict/alarm sections (on accept the checker
    proved exactly those claims; on reject they are reported alongside
    the reject kind, which callers must treat as authoritative).
    """
    claimed = (
        certificate.payload.get("verdict", {}) if certificate is not None else {}
    )
    certified = claimed.get("certified")
    return make_envelope(
        verdict=verdict_section(
            subject=result.subject
            or (certificate.subject if certificate is not None else "?"),
            engine=result.engine
            or (certificate.engine if certificate is not None else "?"),
            certified=bool(certified) if certified is not None else None,
            status=result.kind,
            partial=bool(claimed.get("partial")),
            ok=result.ok,
            detail=result.detail or None,
            edge=list(result.edge) if result.edge else None,
            nodes=result.nodes,
            edges=result.edges,
        ),
        alarms=list(claimed.get("alarms") or ()),
        certificate=certificate_section(
            certificate,
            path=path,
            cached=cached,
            cert_hash=cert_hash,
            cert_bytes=cert_bytes,
        ),
        governor=None,
        timings=timings_section(seconds=seconds, events=events),
    )


def error_envelope(
    *,
    subject: str,
    engine: str,
    status: str,
    detail: str,
    governor: Optional[Dict[str, object]] = None,
    alarms: Iterable[Mapping[str, object]] = (),
    seconds: Optional[float] = None,
) -> Dict[str, object]:
    """The envelope for a run that produced no report (worker error,
    unhandled breach, malformed request)."""
    return make_envelope(
        verdict=verdict_section(
            subject=subject,
            engine=engine,
            certified=None,
            status=status,
            partial=governor is not None,
            detail=detail,
        ),
        alarms=alarms,
        governor=governor,
        timings=timings_section(seconds=seconds),
    )
