"""Execution services: concrete semantics, observability, batch runtime.

Concrete execution — the ground truth for precision measurements.  The
paper evaluates its certifiers by counting *false alarms* — reported
violations that cannot actually occur.  This package provides the
reference semantics against which alarms are judged:

* :mod:`repro.runtime.jcf` — a concrete component model obtained by
  *executing the Easl specification itself*: component objects are
  records, operations run the specification bodies, and a failing
  ``requires`` clause raises the conformance exception (for CMP, this is
  precisely the versioned ``ConcurrentModificationException`` check the
  real JCF performs).
* :mod:`repro.runtime.interp` — an exhaustive interpreter for Jlite CFGs
  under the *nondeterministic client semantics*: branch conditions written
  ``?`` take both outcomes, loops are explored up to a budget.  This is
  exactly the semantics the certifiers over-approximate, so "false alarm"
  and "missed error" are well-defined: an alarm is false iff no explored
  execution fails at that site, and soundness requires every failing site
  to be alarmed.

Production services for running certification at scale:

* :mod:`repro.runtime.trace` — per-phase trace events (parse / derive /
  inline / transform / fixpoint) behind a no-op-by-default tracer;
* :mod:`repro.runtime.cache` — bounded, stats-reporting LRU memoization
  plus defensive cache-key normalization;
* :mod:`repro.runtime.batch` — the batch-certification runtime: a
  manifest of (client, spec, engine) jobs executed on a process pool
  with per-job timeouts, engine fallback, and crash retry.  (Imported
  lazily: it depends on :mod:`repro.api`, which itself uses this
  package's tracing.)
"""

from repro.runtime.cache import CacheStats, LRUCache, stable_key
from repro.runtime.guard import (
    DegradationLadder,
    PartialResult,
    ResourceExhausted,
    ResourceGovernor,
    SiteLedger,
)
from repro.runtime.interp import ExplorationBudget, GroundTruth, explore
from repro.runtime.jcf import ComponentHeap, ConformanceViolation
from repro.runtime.trace import (
    NULL_TRACER,
    CollectingTracer,
    JsonlTracer,
    TraceEvent,
    Tracer,
    current_tracer,
    phase,
    use_tracer,
)

_BATCH_EXPORTS = (
    "BatchResult",
    "BatchRunner",
    "JobResult",
    "JobSpec",
    "JobTimedOut",
    "load_manifest",
)

_COORDINATOR_EXPORTS = (
    "CoordinatorResult",
    "WorkStealingCoordinator",
    "load_shard_plan",
    "merge_shards",
    "run_shard",
    "write_shard_plan",
)

__all__ = [
    "CacheStats",
    "CollectingTracer",
    "ComponentHeap",
    "ConformanceViolation",
    "DegradationLadder",
    "ExplorationBudget",
    "GroundTruth",
    "JsonlTracer",
    "LRUCache",
    "NULL_TRACER",
    "PartialResult",
    "ResourceExhausted",
    "ResourceGovernor",
    "SiteLedger",
    "TraceEvent",
    "Tracer",
    "current_tracer",
    "explore",
    "phase",
    "stable_key",
    "use_tracer",
    *_BATCH_EXPORTS,
    *_COORDINATOR_EXPORTS,
]


def __getattr__(name: str):
    if name in _BATCH_EXPORTS:
        from repro.runtime import batch

        return getattr(batch, name)
    if name in _COORDINATOR_EXPORTS:
        from repro.runtime import coordinator

        return getattr(coordinator, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
