"""Concrete execution: the ground truth for precision measurements.

The paper evaluates its certifiers by counting *false alarms* — reported
violations that cannot actually occur.  This package provides the
reference semantics against which alarms are judged:

* :mod:`repro.runtime.jcf` — a concrete component model obtained by
  *executing the Easl specification itself*: component objects are
  records, operations run the specification bodies, and a failing
  ``requires`` clause raises the conformance exception (for CMP, this is
  precisely the versioned ``ConcurrentModificationException`` check the
  real JCF performs).
* :mod:`repro.runtime.interp` — an exhaustive interpreter for Jlite CFGs
  under the *nondeterministic client semantics*: branch conditions written
  ``?`` take both outcomes, loops are explored up to a budget.  This is
  exactly the semantics the certifiers over-approximate, so "false alarm"
  and "missed error" are well-defined: an alarm is false iff no explored
  execution fails at that site, and soundness requires every failing site
  to be alarmed.
"""

from repro.runtime.interp import ExplorationBudget, GroundTruth, explore
from repro.runtime.jcf import ComponentHeap, ConformanceViolation

__all__ = [
    "ComponentHeap",
    "ConformanceViolation",
    "ExplorationBudget",
    "GroundTruth",
    "explore",
]
