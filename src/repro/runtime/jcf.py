"""Concrete component semantics by direct execution of the Easl spec.

The JCF detects concurrent modification *dynamically*: collections carry a
modification count and iterators remember the count at creation (the paper
notes its Fig. 2 specification matches this up to using heap-allocated
``Version`` objects instead of integers).  Rather than hard-coding that
one component, this module executes any Easl specification concretely:

* component objects are records with reference fields,
* an operation runs the constructor/method body (assignments, ``new``,
  conditionals, ``return``),
* a failing ``requires`` raises :class:`ConformanceViolation` — for CMP,
  the ``ConcurrentModificationException``.

Because the certifier's weakest preconditions were computed from the same
bodies, the concrete and abstract semantics agree by construction.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, Optional, Tuple

from repro.easl.ast import (
    AndCond,
    Assign,
    CmpCond,
    Cond,
    If,
    NewExpr,
    NotCond,
    NullExpr,
    OrCond,
    PathExpr,
    Requires,
    Return,
    Stmt,
)
from repro.easl.spec import ComponentSpec, Operation


class ConformanceViolation(Exception):
    """A ``requires`` clause failed during concrete execution."""

    def __init__(self, op_key: str, clause: str) -> None:
        super().__init__(f"{op_key}: requires ({clause}) failed")
        self.op_key = op_key
        self.clause = clause


@dataclass(eq=False)
class ComponentObject:
    """A concrete component instance."""

    oid: int
    class_name: str
    fields: Dict[str, Optional["ComponentObject"]] = field(default_factory=dict)

    def __repr__(self) -> str:
        return f"<{self.class_name}#{self.oid}>"


class ComponentHeap:
    """Allocator + operation executor for one specification."""

    def __init__(self, spec: ComponentSpec) -> None:
        self.spec = spec
        self._ids = itertools.count(1)
        self.allocations = 0

    def allocate(self, class_name: str) -> ComponentObject:
        self.allocations += 1
        decl = self.spec.classes[class_name]
        obj = ComponentObject(
            next(self._ids),
            class_name,
            {name: None for name in decl.fields},
        )
        return obj

    # -- operation execution ----------------------------------------------------

    def execute(
        self,
        op: Operation,
        operand_values: Dict[str, Optional[ComponentObject]],
    ) -> Optional[ComponentObject]:
        """Run one operation; returns the result value (if any).

        ``operand_values`` binds component-typed operand placeholder names;
        opaque operands are ignored.  Raises :class:`ConformanceViolation`
        when a ``requires`` fails and ``NullDereference`` when the body
        reads a field of null.
        """
        if op.kind == "copy":
            return operand_values.get("src")
        if op.kind == "new":
            receiver = self.allocate(op.class_name)
            ctor = self.spec.constructor(op.class_name)
            if ctor is not None:
                env: Dict[str, Optional[ComponentObject]] = {"this": receiver}
                for pname, ptype in ctor.params:
                    env[pname] = operand_values.get(pname)
                self._run_body(ctor.body, env, op)
            return receiver
        method = self.spec.method(op.class_name, op.method or "")
        receiver = operand_values.get("this")
        if receiver is None:
            raise NullDereference(f"{op.key} invoked on null")
        env = {"this": receiver}
        for pname, ptype in method.params:
            env[pname] = operand_values.get(pname)
        return self._run_body(method.body, env, op)

    def _run_body(
        self,
        body: Tuple[Stmt, ...],
        env: Dict[str, Optional[ComponentObject]],
        op: Operation,
    ) -> Optional[ComponentObject]:
        for stmt in body:
            if isinstance(stmt, Requires):
                if not self._eval_cond(stmt.cond, env):
                    raise ConformanceViolation(op.key, str(stmt.cond))
            elif isinstance(stmt, Assign):
                self._assign(stmt, env)
            elif isinstance(stmt, Return):
                if stmt.expr is None:
                    return None
                return self._eval_expr(stmt.expr, env)
            elif isinstance(stmt, If):
                branch = (
                    stmt.then_body
                    if self._eval_cond(stmt.cond, env)
                    else stmt.else_body
                )
                result = self._run_body(branch, env, op)
                if result is not None:
                    return result
            else:
                raise TypeError(f"unsupported spec statement {stmt!r}")
        return None

    def _assign(self, stmt: Assign, env) -> None:
        value = self._eval_expr(stmt.rhs, env)
        lhs = stmt.lhs
        if not lhs.fields:
            owner = self._implicit_this_owner(lhs.root, env)
            if owner is not None:
                owner.fields[lhs.root] = value
            else:
                env[lhs.root] = value
            return
        base = self._eval_path(PathExpr(lhs.root, lhs.fields[:-1]), env)
        if base is None:
            raise NullDereference(f"store through null path {lhs}")
        base.fields[lhs.fields[-1]] = value

    def _implicit_this_owner(self, name: str, env) -> Optional[ComponentObject]:
        this = env.get("this")
        if (
            name not in env
            and this is not None
            and name in self.spec.classes[this.class_name].fields
        ):
            return this
        return None

    def _eval_expr(self, expr, env) -> Optional[ComponentObject]:
        if isinstance(expr, NewExpr):
            values = {
                pname: self._eval_path(arg, env)
                for (pname, _ptype), arg in zip(
                    (self.spec.constructor(expr.class_name).params
                     if self.spec.constructor(expr.class_name) else []),
                    expr.args,
                )
            }
            op = self.spec.operation(f"new {expr.class_name}")
            return self.execute(op, values)
        if isinstance(expr, NullExpr):
            return None
        if isinstance(expr, PathExpr):
            return self._eval_path(expr, env)
        raise TypeError(f"unsupported spec expression {expr!r}")

    def _eval_path(self, path: PathExpr, env) -> Optional[ComponentObject]:
        if path.root in env:
            value = env[path.root]
        else:
            owner = self._implicit_this_owner(path.root, env)
            if owner is None:
                raise KeyError(f"unbound name {path.root} in spec body")
            value = owner.fields[path.root]
        for field_name in path.fields:
            if value is None:
                raise NullDereference(f"read through null path {path}")
            value = value.fields[field_name]
        return value

    def _eval_cond(self, cond: Cond, env) -> bool:
        if isinstance(cond, CmpCond):
            lhs = self._eval_path(cond.lhs, env)
            rhs = self._eval_path(cond.rhs, env)
            return (lhs is rhs) == cond.equal
        if isinstance(cond, NotCond):
            return not self._eval_cond(cond.body, env)
        if isinstance(cond, AndCond):
            return all(self._eval_cond(a, env) for a in cond.args)
        if isinstance(cond, OrCond):
            return any(self._eval_cond(a, env) for a in cond.args)
        raise TypeError(f"unsupported spec condition {cond!r}")


class NullDereference(Exception):
    """A null dereference during concrete execution: the path dies
    (a would-be NullPointerException), which is not a conformance
    violation."""
