"""Work-stealing distributed batch coordinator.

:mod:`repro.runtime.batch` runs one manifest on one process pool.  This
module layers a *coordinator* on top for batches big enough to need
sharding:

* **sharding** — the manifest is split round-robin into ``shards``
  per-shard work queues (job ``index % shards``), each with its own
  certificate directory and its own checkpoint journal in the exact
  :class:`~repro.runtime.batch.BatchRunner` JSONL format, so every
  crash-safety property of the batch runtime (fsynced appends, torn-tail
  tolerance, certificate SHA re-verification on resume) carries over
  per shard;
* **work stealing** — one process pool serves every queue.  At most
  ``max_workers`` jobs are in flight; each time a slot frees it is
  refilled from the *longest* remaining queue, so a shard that lags
  (slow clients, a crashed worker's retries) automatically attracts the
  idle capacity of the others.  Refills drawn from a different shard
  than the one that freed the slot are counted as ``steals``;
* **multi-host handoff** — :func:`write_shard_plan` materializes the
  sharding as a directory: ``plan.json`` plus one self-contained
  sub-manifest per shard (sources inlined, so the directory is the only
  thing two hosts need to share).  Each host runs its shard with
  ``repro batch --shard-dir DIR --shard-index K``; any host (or the
  original) then merges with ``--merge-shards``;
* **merge by hash** — :func:`merge_shards` collects the per-shard
  certificate directories into one, re-verifying every certificate file
  byte-for-byte against the SHA-256 its shard journal recorded;
  mismatches are reported, never silently merged;
* **crash-safe resume** — re-running a coordinator with ``resume=True``
  restores every journaled job from the per-shard journals (through
  :meth:`BatchRunner._restore`, including certificate re-verification)
  and only the remainder goes back to the queues.  A worker SIGKILLed
  mid-steal therefore costs at most the jobs that were in flight.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from collections import deque
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import Deque, Dict, List, Optional, Sequence, Tuple

from repro.runtime.batch import (
    BatchResult,
    BatchRunner,
    JobSpec,
    _WorkItem,
    _init_worker,
    _worker_run,
    job_key,
    parse_manifest,
)
from repro.store.io import StoreIO

PLAN_NAME = "plan.json"
PLAN_VERSION = 1


def shard_name(index: int) -> str:
    return f"shard-{index:03d}"


def _shard_indices(total: int, shards: int) -> List[List[int]]:
    """Round-robin global job indices per shard (manifest order kept)."""
    return [list(range(s, total, shards)) for s in range(shards)]


@dataclass
class ShardStats:
    shard: int
    jobs: int
    completed: int = 0
    resumed: int = 0
    ok: int = 0

    def to_json(self) -> dict:
        return {
            "shard": self.shard,
            "jobs": self.jobs,
            "completed": self.completed,
            "resumed": self.resumed,
            "ok": self.ok,
        }


@dataclass
class CoordinatorResult:
    """Manifest-order results plus the stealing telemetry."""

    batch: BatchResult
    shards: int
    steals: int
    shard_stats: List[ShardStats] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.batch.ok

    def to_json(self) -> dict:
        doc = self.batch.to_json()
        doc["coordinator"] = {
            "shards": self.shards,
            "steals": self.steals,
            "per_shard": [s.to_json() for s in self.shard_stats],
        }
        return doc

    def format_summary(self) -> str:
        lines = [self.batch.format_summary()]
        lines.append(
            f"[{self.shards} shard(s), {self.steals} steal(s): "
            + ", ".join(
                f"#{s.shard}:{s.completed}/{s.jobs}"
                + (f"(+{s.resumed} resumed)" if s.resumed else "")
                for s in self.shard_stats
            )
            + "]"
        )
        return "\n".join(lines)


class WorkStealingCoordinator:
    """Run a manifest as per-shard queues over one stealing pool.

    Every shard is backed by a single-shard :class:`BatchRunner` whose
    pool is never started — the coordinator drives the runner's absorb /
    retry / journal machinery directly while scheduling all shards'
    work items on one shared pool.  ``shard_dir=None`` runs ephemerally
    (no journals, no certificate directories).
    """

    def __init__(
        self,
        jobs: Sequence[JobSpec],
        *,
        shards: Optional[int] = None,
        max_workers: int = 1,
        shard_dir: Optional[str] = None,
        resume: bool = False,
        default_timeout: Optional[float] = None,
        default_fallback: Optional[str] = None,
        max_retries: Optional[int] = None,
        retry_backoff: Optional[float] = None,
        emit_certs: bool = True,
    ) -> None:
        if not jobs:
            raise ValueError("no jobs to coordinate")
        self.jobs = list(jobs)
        self.max_workers = max(1, int(max_workers))
        self.shards = max(1, int(shards or self.max_workers))
        self.shards = min(self.shards, len(self.jobs))
        self.shard_dir = shard_dir
        self.resume = bool(resume)
        self._io = StoreIO()
        self.steals = 0
        self._assignment = _shard_indices(len(self.jobs), self.shards)
        runner_kwargs: Dict[str, object] = {}
        if max_retries is not None:
            runner_kwargs["max_retries"] = max_retries
        if retry_backoff is not None:
            runner_kwargs["retry_backoff"] = retry_backoff
        self.runners: List[BatchRunner] = []
        for shard, indices in enumerate(self._assignment):
            certs_dir = checkpoint_dir = None
            if shard_dir is not None:
                base = os.path.join(shard_dir, shard_name(shard))
                certs_dir = os.path.join(base, "certs")
                checkpoint_dir = os.path.join(base, "checkpoint")
                self._io.makedirs(certs_dir)
                self._io.makedirs(checkpoint_dir)
            self.runners.append(
                BatchRunner(
                    [self.jobs[i] for i in indices],
                    max_workers=1,
                    default_timeout=default_timeout,
                    default_fallback=default_fallback,
                    emit_certs_dir=certs_dir if emit_certs else None,
                    checkpoint_dir=checkpoint_dir,
                    resume=resume,
                    **runner_kwargs,
                )
            )
        self.run_id = hashlib.sha256(
            "\n".join(job_key(job) for job in self.jobs).encode("utf-8")
        ).hexdigest()[:16]
        if shard_dir is not None and not os.path.exists(
            os.path.join(shard_dir, PLAN_NAME)
        ):
            write_shard_plan(self.jobs, shard_dir, shards=self.shards)

    # -- scheduling --------------------------------------------------------

    def _build_queues(self) -> Tuple[List[Deque[_WorkItem]], List[ShardStats]]:
        queues: List[Deque[_WorkItem]] = []
        stats: List[ShardStats] = []
        for shard, runner in enumerate(self.runners):
            runner._results.clear()
            runner._accum.clear()
            restored: set = set()
            if self.resume and runner.checkpoint_dir is not None:
                records = runner._load_checkpoint()
                for local in range(len(runner.jobs)):
                    record = records.get(runner._job_keys[local])
                    if record is not None and runner._restore(local, record):
                        restored.add(local)
            queue: Deque[_WorkItem] = deque(
                _WorkItem(
                    index=local,
                    job=job,
                    engine=job.engine,
                    timeout=job.timeout,
                )
                for local, job in enumerate(runner.jobs)
                if local not in restored
            )
            queues.append(queue)
            stats.append(
                ShardStats(
                    shard=shard,
                    jobs=len(runner.jobs),
                    resumed=len(restored),
                )
            )
        return queues, stats

    def _longest(self, queues: List[Deque[_WorkItem]]) -> Optional[int]:
        best: Optional[int] = None
        best_len = 0
        for shard, queue in enumerate(queues):
            if len(queue) > best_len:
                best, best_len = shard, len(queue)
        return best

    def _route(
        self,
        shard: int,
        item: _WorkItem,
        outcome,
        queues: List[Deque[_WorkItem]],
        stats: List[ShardStats],
    ) -> None:
        """Feed one outcome to the owning shard's runner; any follow-up
        (fallback attempt) goes to the *front* of that shard's queue so
        it keeps its place in the budget accounting."""
        follow = self.runners[shard]._absorb(item, outcome)
        if follow is not None:
            queues[shard].appendleft(follow)
        else:
            stats[shard].completed += 1

    def _crash(
        self,
        shard: int,
        item: _WorkItem,
        reason: str,
        queues: List[Deque[_WorkItem]],
        stats: List[ShardStats],
    ) -> None:
        follow = self.runners[shard]._retry(item, reason)
        if follow is not None:
            queues[shard].appendleft(follow)
        else:
            stats[shard].completed += 1

    # -- execution ---------------------------------------------------------

    def _prewarm(self):
        """Derive every abstraction the whole manifest needs, once."""
        from repro import api
        from repro.api import CertifySession
        from repro.easl.library import get_spec
        from repro.runtime.trace import CollectingTracer, use_tracer

        engines_by_spec: Dict[str, set] = {}
        for runner in self.runners:
            for job in runner.jobs:
                wanted = engines_by_spec.setdefault(job.spec, set())
                wanted.add(job.engine)
                if job.fallback:
                    wanted.add(job.fallback)
        tracer = CollectingTracer()
        with use_tracer(tracer):
            for spec_name, engines in sorted(engines_by_spec.items()):
                session = CertifySession(
                    get_spec(spec_name), cache=api._ABSTRACTION_CACHE
                )
                session.prewarm(sorted(engines))
        for event in tracer.events:
            event.job = "<prewarm>"
        return tracer.events

    def run(self) -> CoordinatorResult:
        from repro import api

        started = time.perf_counter()
        self.steals = 0
        queues, stats = self._build_queues()
        outstanding = sum(len(q) for q in queues)
        prewarm_events = [] if not outstanding else self._prewarm()
        if outstanding:
            if self.max_workers == 1:
                self._run_inline(queues, stats)
            else:
                self._run_pool(queues, stats)
        results = []
        for shard, runner in enumerate(self.runners):
            for local in range(len(runner.jobs)):
                results.append(
                    (self._assignment[shard][local], runner._results[local])
                )
        results.sort(key=lambda pair: pair[0])
        for stat, runner in zip(stats, self.runners):
            stat.ok = sum(
                1
                for local in range(len(runner.jobs))
                if runner._results[local].ok
            )
        batch = BatchResult(
            results=[result for _, result in results],
            seconds=time.perf_counter() - started,
            jobs=self.max_workers,
            prewarm_events=prewarm_events,
            cache=api._ABSTRACTION_CACHE.stats(),
            resumed=sum(stat.resumed for stat in stats),
        )
        return CoordinatorResult(
            batch=batch,
            shards=self.shards,
            steals=self.steals,
            shard_stats=stats,
        )

    def _run_inline(self, queues, stats) -> None:
        last_shard: Optional[int] = None
        while True:
            shard = self._longest(queues)
            if shard is None:
                return
            if last_shard is not None and shard != last_shard:
                self.steals += 1
            last_shard = shard
            item = queues[shard].popleft()
            self._route(shard, item, _worker_run(item), queues, stats)

    def _run_pool(self, queues, stats) -> None:
        import multiprocessing

        methods = multiprocessing.get_all_start_methods()
        context = (
            multiprocessing.get_context("fork")
            if "fork" in methods
            else multiprocessing.get_context()
        )
        warm_blob = None
        if context.get_start_method() != "fork":
            warm_blob = self.runners[0]._warm_blob()
        retry_backoff = self.runners[0].retry_backoff
        pool_round = 0
        while any(queues):
            if pool_round:
                time.sleep(min(2.0, retry_backoff * (2 ** (pool_round - 1))))
            pool_round += 1
            with ProcessPoolExecutor(
                max_workers=self.max_workers,
                mp_context=context,
                initializer=_init_worker,
                initargs=(warm_blob,),
            ) as pool:
                futures: Dict[object, Tuple[int, _WorkItem]] = {}

                def submit_next(origin: Optional[int]) -> bool:
                    shard = self._longest(queues)
                    if shard is None:
                        return True
                    item = queues[shard].popleft()
                    try:
                        future = pool.submit(_worker_run, item)
                    except Exception:
                        # pool already broken: requeue and rebuild
                        queues[shard].appendleft(item)
                        return False
                    futures[future] = (shard, item)
                    if origin is not None and shard != origin:
                        self.steals += 1
                    return True

                healthy = True
                for _ in range(self.max_workers):
                    if not submit_next(None):
                        healthy = False
                        break
                while futures:
                    done, _ = wait(futures, return_when=FIRST_COMPLETED)
                    for future in done:
                        shard, item = futures.pop(future)
                        try:
                            outcome = future.result()
                        except Exception as error:
                            # infrastructure failure: the worker process
                            # died and the pool is (about to be) broken
                            self._crash(
                                shard,
                                item,
                                type(error).__name__,
                                queues,
                                stats,
                            )
                            healthy = False
                            continue
                        self._route(shard, item, outcome, queues, stats)
                        if healthy:
                            healthy = submit_next(shard)


# -- multi-host handoff --------------------------------------------------------


def _job_manifest_entry(job: JobSpec) -> dict:
    """A self-contained manifest row for one job (source inlined)."""
    entry: Dict[str, object] = {
        "name": job.name,
        "spec": job.spec,
        "source": job.source,
        "engine": job.engine,
    }
    if job.timeout is not None:
        entry["timeout"] = job.timeout
    if job.fallback is not None:
        entry["fallback"] = job.fallback
    if job.fallback_timeout is not None:
        entry["fallback_timeout"] = job.fallback_timeout
    options: Dict[str, object] = {}
    opts = job.options
    if opts.entry is not None:
        options["entry"] = opts.entry
    if opts.prune_requires is not True:
        options["prune_requires"] = opts.prune_requires
    if opts.inline_depth != 12:
        options["inline_depth"] = opts.inline_depth
    if opts.deadline is not None:
        options["deadline"] = opts.deadline
    if opts.max_steps is not None:
        options["max_steps"] = opts.max_steps
    if opts.max_structures is not None:
        options["max_structures"] = opts.max_structures
    if opts.ladder is not None:
        options["ladder"] = list(opts.ladder) if isinstance(
            opts.ladder, (list, tuple)
        ) else opts.ladder
    if options:
        entry["options"] = options
    return entry


def write_shard_plan(
    jobs: Sequence[JobSpec], shard_dir: str, *, shards: int
) -> dict:
    """Materialize the sharding for multi-host handoff.

    Writes ``plan.json`` plus ``shard-NNN/manifest.json`` per shard —
    each sub-manifest inlines its sources, so shipping the directory is
    shipping the work.  Returns the plan document."""
    if not jobs:
        raise ValueError("no jobs to shard")
    shards = max(1, min(int(shards), len(jobs)))
    io = StoreIO()
    assignment = _shard_indices(len(jobs), shards)
    keys = [job_key(job) for job in jobs]
    plan = {
        "v": PLAN_VERSION,
        "run_id": hashlib.sha256(
            "\n".join(keys).encode("utf-8")
        ).hexdigest()[:16],
        "shards": shards,
        "jobs": len(jobs),
        "job_keys": keys,
        "assignment": assignment,
        "shard_names": [shard_name(s) for s in range(shards)],
    }
    for shard, indices in enumerate(assignment):
        base = os.path.join(shard_dir, shard_name(shard))
        io.makedirs(os.path.join(base, "certs"))
        io.makedirs(os.path.join(base, "checkpoint"))
        manifest = {
            "spec": "cmp",
            "jobs": [_job_manifest_entry(jobs[i]) for i in indices],
        }
        io.atomic_write_text(
            os.path.join(base, "manifest.json"),
            json.dumps(manifest, indent=2, sort_keys=True),
        )
    io.atomic_write_text(
        os.path.join(shard_dir, PLAN_NAME),
        json.dumps(plan, indent=2, sort_keys=True),
    )
    return plan


def load_shard_plan(shard_dir: str) -> dict:
    path = os.path.join(shard_dir, PLAN_NAME)
    with open(path) as handle:
        plan = json.load(handle)
    if not isinstance(plan, dict) or plan.get("v") != PLAN_VERSION:
        raise ValueError(f"unsupported shard plan at {path}")
    return plan


def run_shard(
    shard_dir: str,
    shard_index: int,
    *,
    max_workers: int = 1,
    resume: bool = False,
    default_timeout: Optional[float] = None,
    default_fallback: Optional[str] = None,
) -> BatchResult:
    """Run exactly one shard of a materialized plan on this host.

    Uses a plain :class:`BatchRunner` with the shard's own certificate
    and checkpoint directories; the shard's journal composes with a
    later coordinator-level resume and with :func:`merge_shards`."""
    plan = load_shard_plan(shard_dir)
    if not 0 <= shard_index < int(plan["shards"]):
        raise ValueError(
            f"shard index {shard_index} out of range "
            f"(plan has {plan['shards']} shard(s))"
        )
    base = os.path.join(shard_dir, shard_name(shard_index))
    jobs = parse_manifest(
        json.load(open(os.path.join(base, "manifest.json"))),
        base_dir=base,
    )
    runner = BatchRunner(
        jobs,
        max_workers=max_workers,
        default_timeout=default_timeout,
        default_fallback=default_fallback,
        emit_certs_dir=os.path.join(base, "certs"),
        checkpoint_dir=os.path.join(base, "checkpoint"),
        resume=resume,
    )
    return runner.run()


def merge_shards(
    shard_dir: str, *, dest: Optional[str] = None
) -> dict:
    """Merge per-shard certificate directories into one, by hash.

    Every certificate file is re-hashed and verified against the
    SHA-256 its shard journal recorded before it is copied; mismatched
    or missing files are reported, not merged.  Returns a summary
    document (also written to ``merged.json`` in the destination)."""
    plan = load_shard_plan(shard_dir)
    io = StoreIO()
    dest = dest or os.path.join(shard_dir, "certs")
    io.makedirs(dest)
    merged: List[dict] = []
    mismatched: List[dict] = []
    missing: List[dict] = []
    jobs_seen = 0
    for shard in range(int(plan["shards"])):
        base = os.path.join(shard_dir, shard_name(shard))
        checkpoint = os.path.join(base, "checkpoint")
        journal_records: Dict[str, dict] = {}
        if os.path.isdir(checkpoint):
            for name in sorted(os.listdir(checkpoint)):
                if not name.endswith(".jsonl"):
                    continue
                text = io.read_text(os.path.join(checkpoint, name)) or ""
                for line in text.splitlines():
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        record = json.loads(line)
                    except json.JSONDecodeError:
                        break  # torn tail: fsynced appends only tear there
                    if isinstance(record, dict) and record.get("v") == 1:
                        journal_records[str(record.get("key"))] = record
        jobs_seen += len(journal_records)
        for key, record in sorted(journal_records.items()):
            digest = record.get("cert_sha256")
            path = record.get("certificate_path")
            if digest is None:
                continue  # job ran without certificate emission
            entry = {
                "shard": shard,
                "name": record.get("name"),
                "key": key,
                "sha256": digest,
            }
            text = io.read_text(path) if isinstance(path, str) else None
            if text is None:
                missing.append(entry)
                continue
            actual = hashlib.sha256(text.encode("utf-8")).hexdigest()
            if actual != digest:
                mismatched.append({**entry, "actual": actual})
                continue
            io.atomic_write_text(
                os.path.join(dest, os.path.basename(str(path))), text
            )
            merged.append(entry)
    summary = {
        "run_id": plan.get("run_id"),
        "shards": int(plan["shards"]),
        "jobs_journaled": jobs_seen,
        "merged": len(merged),
        "mismatched": mismatched,
        "missing": missing,
        "dest": dest,
        "ok": not mismatched and not missing,
    }
    io.atomic_write_text(
        os.path.join(dest, "merged.json"),
        json.dumps(summary, indent=2, sort_keys=True),
    )
    return summary
