"""The batch-certification runtime.

Certification is an amortized workload: one specification, many clients
(the staging argument of Section 1.3; the certificate-enhanced-analysis
lineage makes the same point for proof-carrying code).  This module runs
a *manifest* of (client, spec, engine) jobs on a
:mod:`concurrent.futures` process pool:

* **timeouts & fallback** — every job gets a wall-clock budget, enforced
  *cooperatively* by a :class:`~repro.runtime.guard.ResourceGovernor`
  polled inside the engine fixpoint (so timed-out jobs surface the
  partial result they had proved); a POSIX interval timer at roughly
  twice the budget remains as a backstop against non-cooperative hangs.
  A job that blows its budget is re-run on its configured fallback
  engine (e.g. a ``tvla-relational`` job falls back to ``fds``) and
  marked ``fallback`` rather than failing the batch;
* **crash retry** — a worker that dies (OOM-killed, segfault) breaks the
  pool; affected jobs are retried with exponential backoff on a fresh
  pool, up to a per-job retry budget, and exhausted jobs degrade to
  error results instead of poisoning the rest of the batch;
* **deterministic results** — results come back in manifest order no
  matter the completion order;
* **checkpoint/resume** — with a checkpoint directory every finished
  job is appended (fsynced) to a per-run JSONL journal as it
  completes; a re-run with ``resume=True`` (``repro batch --resume``)
  restores journaled results instead of re-certifying, after
  re-verifying any emitted certificate file against the journaled
  SHA-256 — a tampered or torn certificate sends the job back to the
  pool.  The run id defaults to a hash of the manifest's job
  identities, so resuming the same manifest finds its own journal;
* **shared caching** — the parent derives every abstraction the manifest
  needs *once* into the bounded LRU of :mod:`repro.api` before the pool
  starts; forked workers inherit the warm cache for free, spawned ones
  receive a pickled copy via the pool initializer;
* **observability** — workers certify under a
  :class:`~repro.runtime.trace.CollectingTracer`; the per-phase events
  travel back with each result, and :meth:`BatchResult.write_trace`
  emits them as JSONL together with one summary record per job.

Manifest format (JSON)::

    {
      "spec": "cmp",                      // batch-wide default spec
      "defaults": {"engine": "auto", "timeout": 30, "fallback": "fds"},
      "jobs": [
        {"name": "fig3", "suite": "fig3", "engine": "fds"},
        {"client": "clients/cart.jl", "engine": "tvla-relational",
         "timeout": 5, "fallback": "tvla-independent"},
        {"name": "inline", "source": "class Main { ... }",
         "spec": "grp", "options": {"prune_requires": false}}
      ]
    }

Each job names its client one of three ways: ``suite`` (a program from
:mod:`repro.suite`), ``client`` (a path, relative to the manifest), or
``source`` (inline Jlite text).
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import signal
import threading
import time
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from contextlib import contextmanager
from dataclasses import dataclass, field, replace
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

import multiprocessing

from repro.certifier.report import CertificationReport
from repro.runtime.cache import CacheStats
from repro.store.io import StoreIO
from repro.runtime.guard import ResourceExhausted
from repro.runtime.trace import (
    CollectingTracer,
    JsonlTracer,
    TraceEvent,
    note,
    use_tracer,
)

#: retries allowed per job for transient worker death
DEFAULT_MAX_RETRIES = 2
#: base of the exponential retry backoff, seconds
DEFAULT_RETRY_BACKOFF = 0.25


class JobTimedOut(Exception):
    """Raised inside a worker when a job exceeds its wall-clock budget."""


class ManifestError(ValueError):
    """The manifest is malformed."""


# -- job descriptions ----------------------------------------------------------


@dataclass(frozen=True)
class JobSpec:
    """One certification job: a client, a spec, an engine, budgets."""

    name: str
    spec: str  # registered spec name (``repro.easl.library.get_spec``)
    source: str  # Jlite client text
    engine: str = "auto"
    timeout: Optional[float] = None  # seconds; None = unlimited
    fallback: Optional[str] = None  # engine to retry with after a timeout
    fallback_timeout: Optional[float] = None  # None = unlimited fallback
    options: "CertifyOptions" = None  # type: ignore[assignment]

    def __post_init__(self) -> None:
        if self.options is None:
            from repro.api import CertifyOptions

            object.__setattr__(self, "options", CertifyOptions())


@dataclass(frozen=True)
class _WorkItem:
    """One attempt at a job, as shipped to a worker."""

    index: int
    job: JobSpec
    engine: str
    timeout: Optional[float]
    is_fallback: bool = False
    attempt: int = 0


@dataclass
class _JobOutcome:
    """What a worker reports back for one attempt."""

    status: str  # "ok" | "timeout" | "error"
    engine: str
    certified: Optional[bool] = None
    subject: Optional[str] = None
    alarms: int = 0
    alarm_lines: List[int] = field(default_factory=list)
    #: full alarm payloads (JSON dicts), for the result envelope
    alarm_json: List[dict] = field(default_factory=list)
    seconds: float = 0.0
    error: Optional[str] = None
    events: List[TraceEvent] = field(default_factory=list)
    pid: int = 0
    #: which budget tripped, when the attempt breached (see
    #: :data:`repro.runtime.guard.BREACH_KINDS`)
    breach: Optional[str] = None
    #: alarm sites salvaged from the partial result / ladder
    salvaged: Optional[int] = None
    #: check sites the breached run never settled
    unknown_sites: Optional[int] = None
    #: cheapest ladder rung the session degraded to (None = no ladder)
    degraded_to: Optional[str] = None
    #: serialized proof-carrying certificate (the byte-stable text of
    #: :class:`repro.cert.ConformanceCertificate`), when the job ran
    #: with ``emit_certificate=True``
    certificate: Optional[str] = None
    #: how the attempt died, when it did not return normally: a worker
    #: process vanishing is ``"signal"`` (classified by the runner), a
    #: worker-side Python exception is ``"exception"``, a blown budget
    #: (cooperative or SIGALRM backstop) is ``"timeout"``
    crash_kind: Optional[str] = None


@dataclass
class JobResult:
    """The final, post-fallback/post-retry verdict for one job."""

    job: JobSpec
    status: str  # "ok" | "fallback" | "timeout" | "error"
    engine_used: str
    fallback: bool = False
    retries: int = 0
    certified: Optional[bool] = None
    subject: Optional[str] = None
    alarms: int = 0
    alarm_lines: List[int] = field(default_factory=list)
    alarm_json: List[dict] = field(default_factory=list)
    seconds: float = 0.0  # summed over every attempt
    error: Optional[str] = None
    events: List[TraceEvent] = field(default_factory=list)
    breach: Optional[str] = None
    salvaged: Optional[int] = None
    unknown_sites: Optional[int] = None
    degraded_to: Optional[str] = None
    #: where the runner wrote this job's certificate (``--emit-certs``)
    certificate_path: Optional[str] = None
    #: crash classification when the job did not finish cleanly:
    #: "signal" | "exception" | "timeout" (None for clean finishes)
    crash_kind: Optional[str] = None
    #: True when this result was restored from a checkpoint journal
    #: instead of being re-certified
    resumed: bool = False

    @property
    def ok(self) -> bool:
        return self.status in ("ok", "fallback")

    def phase_seconds(self) -> Dict[str, float]:
        totals: Dict[str, float] = {}
        for event in self.events:
            totals[event.phase] = totals.get(event.phase, 0.0) + event.seconds
        return totals

    def summary_record(self) -> Dict[str, object]:
        return {
            "phase": "job",
            "job": self.job.name,
            "seconds": round(self.seconds, 6),
            "ts": 0.0,
            "meta": {
                "status": self.status,
                "engine": self.job.engine,
                "engine_used": self.engine_used,
                "fallback": self.fallback,
                "retries": self.retries,
                "certified": self.certified,
                "alarms": self.alarms,
                "error": self.error,
                "breach": self.breach,
                "salvaged": self.salvaged,
                "degraded_to": self.degraded_to,
                "crash": self.crash_kind,
                "resumed": self.resumed,
            },
        }


@dataclass
class BatchResult:
    """Results for the whole manifest, in manifest order."""

    results: List[JobResult]
    seconds: float
    jobs: int  # pool size used
    prewarm_events: List[TraceEvent] = field(default_factory=list)
    cache: Optional[CacheStats] = None
    #: jobs restored from a checkpoint journal instead of re-run
    resumed: int = 0

    @property
    def ok(self) -> bool:
        return all(result.ok for result in self.results)

    def write_trace(self, path: str) -> None:
        """JSONL: every phase event, then one summary record per job."""
        with open(path, "w") as handle:
            tracer = JsonlTracer(handle)
            for event in self.prewarm_events:
                tracer.emit(event)
            for result in self.results:
                for event in result.events:
                    tracer.emit(event)
                handle.write(
                    json.dumps(result.summary_record(), sort_keys=True) + "\n"
                )

    def to_json(self) -> Dict[str, object]:
        """Batch totals plus one shared result envelope per job.

        Each record is the repo-wide envelope (verdict / alarms /
        certificate / governor / timings — see :mod:`repro.envelope`)
        with batch bookkeeping alongside: ``name``, ``spec``, ``engine``
        (requested), ``status`` (batch outcome, incl. ``fallback``),
        ``retries``, ``alarm_lines``, ``error``.
        """
        from repro import envelope as env

        records = []
        for r in self.results:
            records.append(
                {
                    "name": r.job.name,
                    "spec": r.job.spec,
                    "engine": r.job.engine,
                    "engine_used": r.engine_used,
                    "status": r.status,
                    "ok": r.ok,
                    "fallback": r.fallback,
                    "retries": r.retries,
                    "alarm_lines": r.alarm_lines,
                    "error": r.error,
                    "crash": r.crash_kind,
                    "resumed": r.resumed,
                    **env.make_envelope(
                        verdict=env.verdict_section(
                            subject=r.subject or r.job.name,
                            engine=r.engine_used,
                            certified=r.certified,
                            status=(
                                "breached"
                                if r.breach is not None
                                else ("ok" if r.ok else r.status)
                            ),
                            partial=r.breach is not None,
                        ),
                        alarms=r.alarm_json,
                        certificate=env.certificate_section(
                            path=r.certificate_path
                        ),
                        governor=env.governor_section(
                            breach=r.breach,
                            salvaged=r.salvaged,
                            unknown_sites=r.unknown_sites,
                            degraded_to=r.degraded_to,
                        ),
                        timings=env.timings_section(
                            seconds=r.seconds, phases=r.phase_seconds()
                        ),
                    ),
                }
            )
        return {
            "seconds": round(self.seconds, 4),
            "jobs": self.jobs,
            "ok": self.ok,
            "resumed": self.resumed,
            "cache": self.cache.to_json() if self.cache else None,
            "results": records,
        }

    def format_summary(self) -> str:
        """The aggregated batch table (rendered by ``repro batch``)."""
        header = (
            f"{'job':24s} {'engine':28s} {'status':9s} "
            f"{'verdict':14s} {'time':>8s} {'fixpoint':>9s}"
        )
        lines = [header, "-" * len(header)]
        for r in self.results:
            engine = r.job.engine
            if r.fallback:
                engine = f"{engine}->{r.engine_used}"
            if r.degraded_to:
                engine = f"{engine}~{r.degraded_to}"
            if r.certified is None:
                if r.salvaged is not None:
                    verdict = f"salvaged {r.salvaged}"
                else:
                    verdict = "—"
            elif r.certified:
                verdict = "CERTIFIED"
            else:
                verdict = f"{r.alarms} alarm(s)"
            fixpoint = r.phase_seconds().get("fixpoint")
            lines.append(
                f"{r.job.name:24s} {engine:28s} {r.status:9s} "
                f"{verdict:14s} {r.seconds:>7.2f}s "
                f"{(f'{fixpoint:.2f}s' if fixpoint is not None else '—'):>9s}"
            )
        lines.append("-" * len(header))
        good = sum(1 for r in self.results if r.ok)
        lines.append(
            f"{good}/{len(self.results)} jobs ok in {self.seconds:.2f}s "
            f"on {self.jobs} worker(s)"
        )
        if self.resumed:
            lines.append(
                f"[{self.resumed} job(s) restored from checkpoint]"
            )
        if self.cache is not None:
            lines.append(f"[{self.cache}]")
        return "\n".join(lines)


# -- manifest loading ----------------------------------------------------------

_JOB_KEYS = {
    "name",
    "suite",
    "client",
    "source",
    "spec",
    "engine",
    "timeout",
    "fallback",
    "fallback_timeout",
    "options",
}
_OPTION_KEYS = {
    "entry",
    "prune_requires",
    "inline_depth",
    "deadline",
    "max_steps",
    "max_structures",
    "ladder",
}


def load_manifest(path: str) -> List[JobSpec]:
    """Parse a manifest file into job specs (see the module docstring)."""
    with open(path) as handle:
        data = json.load(handle)
    base_dir = os.path.dirname(os.path.abspath(path))
    return parse_manifest(data, base_dir=base_dir)


def parse_manifest(data: object, base_dir: str = ".") -> List[JobSpec]:
    from repro.api import ENGINES, CertifyOptions
    from repro.easl.library import available_specs

    if isinstance(data, list):
        data = {"jobs": data}
    if not isinstance(data, dict) or not isinstance(data.get("jobs"), list):
        raise ManifestError("manifest must be a JSON object with a 'jobs' list")
    defaults = data.get("defaults", {})
    if not isinstance(defaults, dict):
        raise ManifestError("'defaults' must be an object")
    batch_spec = data.get("spec", defaults.get("spec", "cmp"))

    jobs: List[JobSpec] = []
    names: Dict[str, int] = {}
    for index, entry in enumerate(data["jobs"]):
        if not isinstance(entry, dict):
            raise ManifestError(f"job #{index} is not an object")
        unknown = set(entry) - _JOB_KEYS
        if unknown:
            raise ManifestError(
                f"job #{index} has unknown key(s): {sorted(unknown)}"
            )
        merged = {**defaults, **entry}
        source, default_name = _resolve_source(merged, index, base_dir)

        spec_name = str(merged.get("spec", batch_spec)).lower()
        if spec_name not in available_specs():
            raise ManifestError(
                f"job #{index}: unknown spec {spec_name!r}; "
                f"available: {available_specs()}"
            )
        engine = str(merged.get("engine", "auto"))
        fallback = merged.get("fallback")
        for candidate in (engine, fallback):
            if candidate is not None and candidate not in ENGINES:
                raise ManifestError(
                    f"job #{index}: unknown engine {candidate!r}"
                )

        option_values = merged.get("options", {})
        if not isinstance(option_values, dict):
            raise ManifestError(f"job #{index}: 'options' must be an object")
        unknown = set(option_values) - _OPTION_KEYS
        if unknown:
            raise ManifestError(
                f"job #{index} has unknown option(s): {sorted(unknown)}"
            )
        if isinstance(option_values.get("ladder"), list):
            # JSON has no tuples; CertifyOptions wants a hashable ladder
            option_values = {
                **option_values,
                "ladder": tuple(option_values["ladder"]),
            }

        name = str(merged.get("name", default_name))
        if name in names:
            names[name] += 1
            name = f"{name}#{names[name]}"
        names.setdefault(name, 1)

        timeout = merged.get("timeout")
        fallback_timeout = merged.get("fallback_timeout")
        jobs.append(
            JobSpec(
                name=name,
                spec=spec_name,
                source=source,
                engine=engine,
                timeout=float(timeout) if timeout is not None else None,
                fallback=fallback,
                fallback_timeout=(
                    float(fallback_timeout)
                    if fallback_timeout is not None
                    else None
                ),
                options=CertifyOptions(**option_values),
            )
        )
    if not jobs:
        raise ManifestError("manifest has no jobs")
    return jobs


def _resolve_source(
    entry: Dict[str, object], index: int, base_dir: str
) -> Tuple[str, str]:
    given = [key for key in ("suite", "client", "source") if key in entry]
    if len(given) != 1:
        raise ManifestError(
            f"job #{index} must name its client with exactly one of "
            f"'suite', 'client' or 'source' (got {given or 'none'})"
        )
    if "suite" in entry:
        from repro.suite import by_name

        bench = by_name(str(entry["suite"]))
        return bench.source, bench.name
    if "client" in entry:
        path = os.path.join(base_dir, str(entry["client"]))
        with open(path) as handle:
            return handle.read(), os.path.basename(path)
    return str(entry["source"]), f"job-{index}"


def job_key(job: JobSpec) -> str:
    """Stable identity of one job across runs (checkpoint/resume).

    Covers everything that changes the verdict: the client text (by
    hash), the spec, the engines, and the budgets.  Editing any of
    those gives the job a new key, so a stale journal entry can never
    shadow changed work.
    """
    material = json.dumps(
        {
            "name": job.name,
            "spec": job.spec,
            "engine": job.engine,
            "source": hashlib.sha256(
                job.source.encode("utf-8")
            ).hexdigest(),
            "timeout": job.timeout,
            "fallback": job.fallback,
            "fallback_timeout": job.fallback_timeout,
        },
        sort_keys=True,
    )
    return hashlib.sha256(material.encode("utf-8")).hexdigest()


# -- worker side ---------------------------------------------------------------


def _backstop_seconds(timeout: Optional[float]) -> Optional[float]:
    """The SIGALRM backstop for a cooperative budget: ~2x + slack.

    The governor's cooperative deadline is the primary enforcement; the
    interval timer only catches non-cooperative hangs (a stuck parse, a
    pathological transform), so it fires well after the budget.
    """
    if timeout is None or timeout <= 0:
        return None
    return timeout * 2.0 + 1.0


@contextmanager
def _deadline(seconds: Optional[float]) -> Iterator[None]:
    """Backstop a wall-clock budget with SIGALRM (POSIX main thread only).

    On platforms without ``SIGALRM`` — or off the main thread, where
    ``signal.setitimer`` would raise — the timer is skipped and a
    ``warning`` trace event records that only the cooperative governor
    is enforcing the budget (previously this was a silent no-op).
    """
    if seconds is None or seconds <= 0:
        yield
        return
    usable = (
        hasattr(signal, "SIGALRM")
        and threading.current_thread() is threading.main_thread()
    )
    if not usable:
        note(
            "warning",
            reason="sigalrm-unavailable",
            detail=(
                "no SIGALRM on this platform/thread; relying on the "
                "cooperative governor deadline only"
            ),
            seconds_requested=float(seconds),
        )
        yield
        return

    def on_alarm(signum, frame):
        raise JobTimedOut(f"job exceeded {seconds}s wall-clock backstop")

    previous = signal.signal(signal.SIGALRM, on_alarm)
    signal.setitimer(signal.ITIMER_REAL, float(seconds))
    try:
        yield
    finally:
        signal.setitimer(signal.ITIMER_REAL, 0.0)
        signal.signal(signal.SIGALRM, previous)


def _init_worker(warm_blob: Optional[bytes]) -> None:
    """Pool initializer: install pre-derived abstractions (spawn path).

    With a forked pool the worker already inherits the parent's warm
    cache and ``warm_blob`` is ``None``.
    """
    if not warm_blob:
        return
    from repro import api

    for key, abstraction in pickle.loads(warm_blob):
        api._ABSTRACTION_CACHE.put(key, abstraction)


def _effective_options(item: _WorkItem):
    """The job options with the attempt's timeout as governor deadline."""
    options = item.job.options
    if item.timeout is not None and options.deadline is None:
        options = replace(options, deadline=float(item.timeout))
    return options


def _execute_certification(item: _WorkItem) -> CertificationReport:
    """Run one certification attempt (kept separate for fault injection
    in tests — crash/hang simulations monkeypatch this symbol)."""
    from repro import api
    from repro.api import CertifySession
    from repro.easl.library import get_spec

    spec = get_spec(item.job.spec)
    session = CertifySession(
        spec,
        item.engine,
        _effective_options(item),
        cache=api._ABSTRACTION_CACHE,
    )
    return session.certify(item.job.source)


def _worker_run(item: _WorkItem) -> _JobOutcome:
    """Top-level worker entry: certify one job attempt, never raise."""
    tracer = CollectingTracer()
    started = time.perf_counter()
    try:
        with use_tracer(tracer):
            with _deadline(_backstop_seconds(item.timeout)):
                report = _execute_certification(item)
        from repro.cert import model

        stats = report.stats or {}
        outcome = _JobOutcome(
            status="ok",
            engine=item.engine,
            certified=report.certified,
            subject=report.subject,
            alarms=len(report.alarms),
            alarm_lines=sorted(report.alarm_lines()),
            alarm_json=model.alarms_to_json(report.alarms),
            # present when the session breached and ran its ladder
            breach=stats.get("breach"),
            salvaged=stats.get("salvaged"),
            unknown_sites=stats.get("sites_unresolved"),
            degraded_to=stats.get("degraded_to"),
            certificate=(
                report.certificate.text()
                if report.certificate is not None
                else None
            ),
        )
    except JobTimedOut as error:
        outcome = _JobOutcome(
            status="timeout",
            engine=item.engine,
            error=str(error),
            breach="deadline",
            crash_kind="timeout",
        )
    except ResourceExhausted as error:
        from repro.cert import model

        partial = error.partial
        outcome = _JobOutcome(
            status="timeout",
            engine=item.engine,
            error=f"{type(error).__name__}: {error}",
            breach=error.breach,
            crash_kind="timeout",
            subject=partial.subject if partial is not None else None,
            salvaged=len(partial.alarms) if partial is not None else None,
            unknown_sites=(
                len(partial.unknown_sites) if partial is not None else None
            ),
            alarms=len(partial.alarms) if partial is not None else 0,
            alarm_lines=(
                sorted({a.line for a in partial.alarms})
                if partial is not None
                else []
            ),
            alarm_json=(
                model.alarms_to_json(partial.alarms)
                if partial is not None
                else []
            ),
        )
    except Exception as error:
        outcome = _JobOutcome(
            status="error",
            engine=item.engine,
            error=f"{type(error).__name__}: {error}",
            crash_kind="exception",
        )
    outcome.seconds = time.perf_counter() - started
    outcome.pid = os.getpid()
    for event in tracer.events:
        event.job = item.job.name
        event.meta.setdefault("engine", item.engine)
        event.meta.setdefault("attempt", item.attempt)
        if item.is_fallback:
            event.meta.setdefault("fallback", True)
    outcome.events = tracer.events
    return outcome


# -- the runner ----------------------------------------------------------------


class BatchRunner:
    """Execute a list of :class:`JobSpec` on a process pool.

    ``max_workers=1`` runs the jobs sequentially in-process (identical
    semantics, no pool overhead) — the baseline the parallel speedup is
    measured against.
    """

    def __init__(
        self,
        jobs: Sequence[JobSpec],
        *,
        max_workers: int = 1,
        default_timeout: Optional[float] = None,
        default_fallback: Optional[str] = None,
        max_retries: int = DEFAULT_MAX_RETRIES,
        retry_backoff: float = DEFAULT_RETRY_BACKOFF,
        default_deadline: Optional[float] = None,
        default_max_steps: Optional[int] = None,
        default_max_structures: Optional[int] = None,
        default_ladder=None,
        emit_certs_dir: Optional[str] = None,
        checkpoint_dir: Optional[str] = None,
        run_id: Optional[str] = None,
        resume: bool = False,
    ) -> None:
        if not jobs:
            raise ValueError("no jobs to run")
        self.emit_certs_dir = emit_certs_dir
        self.jobs = [
            self._apply_defaults(
                job,
                default_timeout,
                default_fallback,
                default_deadline,
                default_max_steps,
                default_max_structures,
                default_ladder,
                emit_certificates=emit_certs_dir is not None,
            )
            for job in jobs
        ]
        self.max_workers = max(1, int(max_workers))
        self.max_retries = max(0, int(max_retries))
        self.retry_backoff = retry_backoff
        self._results: Dict[int, JobResult] = {}
        self._accum: Dict[int, Dict[str, object]] = {}
        self.checkpoint_dir = checkpoint_dir
        self.resume = bool(resume)
        self._io = StoreIO()
        self._job_keys = [job_key(job) for job in self.jobs]
        self.run_id = run_id or hashlib.sha256(
            "\n".join(self._job_keys).encode("utf-8")
        ).hexdigest()[:16]

    @property
    def journal_path(self) -> Optional[str]:
        """Where this run's checkpoint journal lives (JSONL)."""
        if self.checkpoint_dir is None:
            return None
        return os.path.join(self.checkpoint_dir, f"{self.run_id}.jsonl")

    @staticmethod
    def _apply_defaults(
        job: JobSpec,
        default_timeout: Optional[float],
        default_fallback: Optional[str],
        default_deadline: Optional[float] = None,
        default_max_steps: Optional[int] = None,
        default_max_structures: Optional[int] = None,
        default_ladder=None,
        emit_certificates: bool = False,
    ) -> JobSpec:
        updates = {}
        if job.timeout is None and default_timeout is not None:
            updates["timeout"] = default_timeout
        if job.fallback is None and default_fallback is not None:
            if default_fallback != job.engine:
                updates["fallback"] = default_fallback
        option_updates = {}
        if job.options.deadline is None and default_deadline is not None:
            option_updates["deadline"] = default_deadline
        if job.options.max_steps is None and default_max_steps is not None:
            option_updates["max_steps"] = default_max_steps
        if (
            job.options.max_structures is None
            and default_max_structures is not None
        ):
            option_updates["max_structures"] = default_max_structures
        if job.options.ladder is None and default_ladder is not None:
            option_updates["ladder"] = (
                tuple(default_ladder)
                if isinstance(default_ladder, (list, tuple))
                else default_ladder
            )
        if emit_certificates and not job.options.emit_certificate:
            option_updates["emit_certificate"] = True
        if option_updates:
            updates["options"] = replace(job.options, **option_updates)
        return replace(job, **updates) if updates else job

    # -- shared caching --------------------------------------------------------

    def _prewarm(self) -> List[TraceEvent]:
        """Derive every needed abstraction once, before workers exist."""
        from repro import api
        from repro.api import CertifySession
        from repro.easl.library import get_spec

        engines_by_spec: Dict[str, set] = {}
        for job in self.jobs:
            wanted = engines_by_spec.setdefault(job.spec, set())
            wanted.add(job.engine)
            if job.fallback:
                wanted.add(job.fallback)
        tracer = CollectingTracer()
        with use_tracer(tracer):
            for spec_name, engines in sorted(engines_by_spec.items()):
                spec = get_spec(spec_name)
                session = CertifySession(
                    spec, cache=api._ABSTRACTION_CACHE
                )
                session.prewarm(sorted(engines))
        for event in tracer.events:
            event.job = "<prewarm>"
        return tracer.events

    def _warm_blob(self) -> Optional[bytes]:
        """Pickled warm-cache entries for spawn-based pools."""
        from repro import api

        try:
            return pickle.dumps(api._ABSTRACTION_CACHE.items())
        except Exception:
            return None  # workers will re-derive; correct, just slower

    # -- result accumulation ---------------------------------------------------

    def _bump(self, index: int, key: str, amount) -> None:
        accum = self._accum.setdefault(
            index, {"events": [], "seconds": 0.0, "retries": 0}
        )
        if key == "events":
            accum["events"].extend(amount)
        else:
            accum[key] = accum[key] + amount

    def _write_certificate(
        self, job: JobSpec, outcome: _JobOutcome
    ) -> Optional[str]:
        """Persist a job's certificate text; returns the path written."""
        if self.emit_certs_dir is None or outcome.certificate is None:
            return None
        safe = job.name.replace(os.sep, "_")
        path = os.path.join(self.emit_certs_dir, f"{safe}.cert.json")
        # atomic + fsynced: a crash mid-emission leaves the previous
        # certificate (or nothing), never a torn file a later --resume
        # would have to reject
        self._io.atomic_write_text(path, outcome.certificate)
        return path

    def _finalize(self, item: _WorkItem, outcome: _JobOutcome, status: str):
        accum = self._accum.setdefault(
            item.index, {"events": [], "seconds": 0.0, "retries": 0}
        )
        self._results[item.index] = JobResult(
            job=item.job,
            status=status,
            engine_used=outcome.engine,
            fallback=item.is_fallback,
            retries=int(accum["retries"]),
            certified=outcome.certified,
            subject=outcome.subject,
            alarms=outcome.alarms,
            alarm_lines=outcome.alarm_lines,
            alarm_json=outcome.alarm_json,
            seconds=float(accum["seconds"]) + outcome.seconds,
            error=outcome.error,
            events=list(accum["events"]) + outcome.events,
            # a fallback attempt inherits the original breach/salvage
            breach=(
                outcome.breach
                if outcome.breach is not None
                else accum.get("breach")
            ),
            salvaged=(
                outcome.salvaged
                if outcome.salvaged is not None
                else accum.get("salvaged")
            ),
            unknown_sites=outcome.unknown_sites,
            degraded_to=outcome.degraded_to,
            certificate_path=self._write_certificate(item.job, outcome),
            crash_kind=outcome.crash_kind,
        )
        self._journal(item.index, outcome)

    # -- checkpoint journal ----------------------------------------------------

    def _journal(self, index: int, outcome: Optional[_JobOutcome]) -> None:
        """Durably append the finalized result for job ``index``."""
        path = self.journal_path
        if path is None:
            return
        result = self._results[index]
        record = {
            "v": 1,
            "key": self._job_keys[index],
            "name": result.job.name,
            "status": result.status,
            "engine_used": result.engine_used,
            "fallback": result.fallback,
            "retries": result.retries,
            "certified": result.certified,
            "subject": result.subject,
            "alarms": result.alarms,
            "alarm_lines": list(result.alarm_lines),
            "alarm_json": list(result.alarm_json),
            "seconds": result.seconds,
            "error": result.error,
            "breach": result.breach,
            "salvaged": result.salvaged,
            "unknown_sites": result.unknown_sites,
            "degraded_to": result.degraded_to,
            "crash": result.crash_kind,
            "certificate_path": result.certificate_path,
            "cert_sha256": (
                hashlib.sha256(
                    outcome.certificate.encode("utf-8")
                ).hexdigest()
                if outcome is not None and outcome.certificate is not None
                else None
            ),
        }
        self._io.append_line(path, json.dumps(record, sort_keys=True))

    def _load_checkpoint(self) -> Dict[str, dict]:
        """Journal records by job key (later attempts win); a torn tail
        line — the mark of a run killed mid-append — is ignored."""
        path = self.journal_path
        text = self._io.read_text(path) if path is not None else None
        records: Dict[str, dict] = {}
        if not text:
            return records
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                break  # appends are ordered+fsynced: only the tail tears
            if (
                isinstance(record, dict)
                and record.get("v") == 1
                and isinstance(record.get("key"), str)
            ):
                records[record["key"]] = record
        return records

    def _restore(self, index: int, record: dict) -> bool:
        """Rebuild a journaled result; False = journal not trustworthy.

        A journaled certificate is re-verified byte-for-byte against the
        recorded SHA-256 before the job is skipped — a missing, torn or
        tampered certificate file sends the job back to the pool.
        """
        digest = record.get("cert_sha256")
        path = record.get("certificate_path")
        if digest is not None:
            if not isinstance(path, str):
                return False
            text = self._io.read_text(path)
            if text is None:
                return False
            actual = hashlib.sha256(text.encode("utf-8")).hexdigest()
            if actual != digest:
                return False
        self._results[index] = JobResult(
            job=self.jobs[index],
            status=str(record.get("status", "error")),
            engine_used=str(record.get("engine_used", "")),
            fallback=bool(record.get("fallback", False)),
            retries=int(record.get("retries", 0) or 0),
            certified=record.get("certified"),
            subject=record.get("subject"),
            alarms=int(record.get("alarms", 0) or 0),
            alarm_lines=[int(n) for n in record.get("alarm_lines") or []],
            alarm_json=[
                dict(a)
                for a in record.get("alarm_json") or []
                if isinstance(a, dict)
            ],
            seconds=float(record.get("seconds", 0.0) or 0.0),
            error=record.get("error"),
            breach=record.get("breach"),
            salvaged=record.get("salvaged"),
            unknown_sites=record.get("unknown_sites"),
            degraded_to=record.get("degraded_to"),
            certificate_path=path if isinstance(path, str) else None,
            crash_kind=record.get("crash"),
            resumed=True,
        )
        return True

    def _absorb(
        self, item: _WorkItem, outcome: _JobOutcome
    ) -> Optional[_WorkItem]:
        """Record one attempt; return a follow-up work item if any."""
        job = item.job
        if outcome.status == "ok":
            self._finalize(
                item, outcome, "fallback" if item.is_fallback else "ok"
            )
            return None
        if (
            outcome.status == "timeout"
            and not item.is_fallback
            and job.fallback
            and job.fallback != item.engine
        ):
            self._bump(item.index, "events", outcome.events)
            self._bump(item.index, "seconds", outcome.seconds)
            accum = self._accum[item.index]
            if outcome.breach is not None:
                accum.setdefault("breach", outcome.breach)
            if outcome.salvaged is not None:
                accum.setdefault("salvaged", outcome.salvaged)
            return _WorkItem(
                index=item.index,
                job=job,
                engine=job.fallback,
                timeout=job.fallback_timeout,
                is_fallback=True,
                attempt=0,
            )
        self._finalize(item, outcome, outcome.status)
        return None

    def _retry(self, item: _WorkItem, reason: str) -> Optional[_WorkItem]:
        """Handle a worker death; return the retry item or finalize."""
        if item.attempt >= self.max_retries:
            self._finalize(
                item,
                _JobOutcome(
                    status="error",
                    engine=item.engine,
                    error=f"worker died ({reason}); retries exhausted",
                    # the worker process vanished (SIGKILL/OOM/segfault)
                    # rather than raising — distinct from a worker-side
                    # Python exception or a blown budget
                    crash_kind="signal",
                ),
                "error",
            )
            return None
        self._bump(item.index, "retries", 1)
        return replace(item, attempt=item.attempt + 1)

    # -- execution -------------------------------------------------------------

    def run(self) -> BatchResult:
        from repro import api

        started = time.perf_counter()
        self._results.clear()
        self._accum.clear()
        restored: set = set()
        if self.resume and self.checkpoint_dir is not None:
            records = self._load_checkpoint()
            for index in range(len(self.jobs)):
                record = records.get(self._job_keys[index])
                if record is not None and self._restore(index, record):
                    restored.add(index)
        items = [
            _WorkItem(
                index=index,
                job=job,
                engine=job.engine,
                timeout=job.timeout,
            )
            for index, job in enumerate(self.jobs)
            if index not in restored
        ]
        prewarm_events = [] if not items else self._prewarm()
        if items:
            if self.max_workers == 1:
                self._run_inline(items)
            else:
                self._run_pool(items)
        results = [self._results[index] for index in range(len(self.jobs))]
        return BatchResult(
            results=results,
            seconds=time.perf_counter() - started,
            jobs=self.max_workers,
            prewarm_events=prewarm_events,
            cache=api._ABSTRACTION_CACHE.stats(),
            resumed=len(restored),
        )

    def _run_inline(self, items: List[_WorkItem]) -> None:
        for item in items:
            follow: Optional[_WorkItem] = item
            while follow is not None:
                follow = self._absorb(follow, _worker_run(follow))

    def _mp_context(self):
        # fork is preferred: workers inherit the warm derivation cache
        # (and all imported modules) for free.
        methods = multiprocessing.get_all_start_methods()
        if "fork" in methods:
            return multiprocessing.get_context("fork")
        return multiprocessing.get_context()

    def _run_pool(self, items: List[_WorkItem]) -> None:
        pending: List[_WorkItem] = list(items)
        pool_round = 0
        context = self._mp_context()
        warm_blob = (
            None if context.get_start_method() == "fork" else self._warm_blob()
        )
        while pending:
            if pool_round:
                delay = min(
                    2.0, self.retry_backoff * (2 ** (pool_round - 1))
                )
                time.sleep(delay)
            pool_round += 1
            with ProcessPoolExecutor(
                max_workers=self.max_workers,
                mp_context=context,
                initializer=_init_worker,
                initargs=(warm_blob,),
            ) as pool:
                futures = {}
                for item in pending:
                    futures[pool.submit(_worker_run, item)] = item
                pending = []
                while futures:
                    done, _ = wait(futures, return_when=FIRST_COMPLETED)
                    for future in done:
                        item = futures.pop(future)
                        try:
                            outcome = future.result()
                        except Exception as error:
                            # _worker_run never raises, so any exception
                            # here is infrastructure: the worker died and
                            # the pool is (or is about to be) broken.
                            follow = self._retry(item, type(error).__name__)
                            if follow is not None:
                                pending.append(follow)
                            continue
                        follow = self._absorb(item, outcome)
                        if follow is not None:
                            try:
                                futures[
                                    pool.submit(_worker_run, follow)
                                ] = follow
                            except Exception:
                                pending.append(follow)
