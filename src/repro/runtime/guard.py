"""Cooperative resource governance for the certification engines.

The paper's central trade-off (Sections 6–7) is precision against time
and space: the relational TVLA certifier can blow up where the
independent-attribute and staged certifiers stay cheap.  Production use
therefore needs the ESP-style discipline — *budget the analysis, degrade
precision, keep what you proved* — pushed inside the fixpoint loops,
where a breach can be handled cooperatively instead of fatally.

Three pieces:

* :class:`ResourceGovernor` — a wall-clock deadline, a fixpoint-step
  budget, a structure-count budget and a cooperative :meth:`cancel
  <ResourceGovernor.cancel>` flag.  Every engine polls it (``tick()``)
  once per worklist iteration and reports structure growth through
  :meth:`check_structures <ResourceGovernor.check_structures>`.

* :class:`ResourceExhausted` — the typed breach signal.  It carries a
  :class:`PartialResult`: the alarms confirmed before the breach, the
  sites the engine never settled (conservatively ``unknown``, *never*
  silently passed), and which budget tripped.  Because every engine's
  fixpoint is monotone — states only grow, must-information only weakens
  — an alarm raised mid-run is an alarm of the completed run too, so
  salvaged alarms are sound; only *certification* needs completion.

* :class:`DegradationLadder` / :class:`SiteLedger` — the policy and the
  per-site merge for re-running the unknown residue at cheaper precision
  tiers (e.g. ``tvla-relational → tvla-independent → fds``) with the
  remaining budget.  A breached rung resolves only the sites it alarmed;
  the first rung that *completes* resolves everything still open; sites
  unresolved after the last rung become conservative alarms.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Set, Tuple

from repro.certifier.report import Alarm, CertificationReport

#: every breach kind a :class:`ResourceExhausted` may carry
BREACH_KINDS = (
    "deadline",
    "steps",
    "structures",
    "memory",
    "cancelled",
    "injected",
    "error",
)

#: instance label of the conservative alarm for a never-settled site
UNRESOLVED_INSTANCE = "<unresolved: resource budget exhausted>"


class ResourceExhausted(Exception):
    """An engine breached its resource budget (or was cancelled).

    ``breach`` is one of :data:`BREACH_KINDS`; ``partial`` carries what
    the engine had proved when it stopped (attached by the engine's
    fixpoint loop, so governor-raised instances start without one).
    """

    def __init__(
        self,
        message: str,
        *,
        breach: str = "error",
        partial: Optional["PartialResult"] = None,
    ) -> None:
        super().__init__(message)
        self.breach = breach
        self.partial = partial


class ResourceGovernor:
    """Cooperatively-polled budgets for one certification attempt.

    The deadline is fixed at construction as an *absolute* monotonic
    instant, so :meth:`descend` can hand the remaining wall clock to a
    cheaper ladder rung while resetting the per-rung step and structure
    budgets.
    """

    def __init__(
        self,
        *,
        deadline: Optional[float] = None,
        max_steps: Optional[int] = None,
        max_structures: Optional[int] = None,
        clock: Callable[[], float] = time.monotonic,
        faults: Optional["FaultHook"] = None,
    ) -> None:
        self.deadline = deadline
        self.max_steps = max_steps
        self.max_structures = max_structures
        self._clock = clock
        self.faults = faults
        self._deadline_at = (
            clock() + deadline if deadline is not None else None
        )
        self.steps = 0
        self._cancel_reason: Optional[str] = None

    # -- state ------------------------------------------------------------------

    @property
    def cancelled(self) -> bool:
        return self._cancel_reason is not None

    def cancel(self, reason: str = "cancelled") -> None:
        """Request cooperative cancellation; honoured at the next poll."""
        self._cancel_reason = reason

    def remaining_seconds(self) -> Optional[float]:
        if self._deadline_at is None:
            return None
        return max(0.0, self._deadline_at - self._clock())

    # -- polling ----------------------------------------------------------------

    def tick(self) -> None:
        """One fixpoint step: count it and enforce every budget.

        The deadline is checked on *every* tick — a poll interval would
        save one clock read per iteration but lets tiny deadlines slip
        past short fixpoints, which the batch runtime relies on.
        """
        self.steps += 1
        if self.faults is not None:
            self.faults.on_poll(self)
        if self._cancel_reason is not None:
            raise ResourceExhausted(
                f"analysis cancelled: {self._cancel_reason}",
                breach="cancelled",
            )
        if self.max_steps is not None and self.steps > self.max_steps:
            raise ResourceExhausted(
                f"fixpoint step budget exhausted "
                f"({self.steps} > {self.max_steps})",
                breach="steps",
            )
        if (
            self._deadline_at is not None
            and self._clock() > self._deadline_at
        ):
            raise ResourceExhausted(
                f"wall-clock deadline exceeded ({self.deadline}s)",
                breach="deadline",
            )

    def check_structures(self, count: int) -> None:
        """Enforce the structure/state-count budget at ``count``."""
        if self.max_structures is not None and count > self.max_structures:
            raise ResourceExhausted(
                f"structure budget exceeded "
                f"({count} > {self.max_structures})",
                breach="structures",
            )

    # -- ladder support ---------------------------------------------------------

    def descend(self) -> "ResourceGovernor":
        """A governor for the next (cheaper) ladder rung.

        Step and structure budgets reset — the cheaper tier gets a fresh
        allowance — but the absolute deadline and any cancellation carry
        over: wall clock is a hard wall for the whole ladder.
        """
        successor = ResourceGovernor(
            max_steps=self.max_steps,
            max_structures=self.max_structures,
            clock=self._clock,
            faults=self.faults,
        )
        successor.deadline = self.deadline
        successor._deadline_at = self._deadline_at
        successor._cancel_reason = self._cancel_reason
        return successor


class FaultHook:
    """Protocol for :attr:`ResourceGovernor.faults` (see
    :mod:`repro.testing.faults` for the deterministic implementation)."""

    def on_poll(self, governor: ResourceGovernor) -> None:  # pragma: no cover
        pass


# -- partial results ------------------------------------------------------------


@dataclass
class PartialResult:
    """What a breached engine run had established when it stopped.

    ``alarms`` are sound against the completed run (monotonicity: states
    only grow, so a mid-run alarm persists); ``unknown_sites`` maps every
    check site *not* alarmed yet to its ``(line, op_key)`` — those sites
    were never certified and must be conservatively flagged or re-run.
    """

    engine: str
    subject: str
    breach: str
    alarms: List[Alarm]
    unknown_sites: Dict[int, Tuple[int, str]]
    nodes_analyzed: int = 0
    nodes_total: int = 0
    stats: Dict[str, object] = field(default_factory=dict)

    def alarm_site_ids(self) -> Set[int]:
        return {alarm.site_id for alarm in self.alarms}

    def covered_sites(self) -> Set[int]:
        """Sites the partial result accounts for (alarmed or unknown).

        Soundness under budget means a ground-truth error site is always
        covered — either alarmed already or still marked unknown.
        """
        return self.alarm_site_ids() | set(self.unknown_sites)

    def unknown_alarms(self) -> List[Alarm]:
        """Conservative (non-definite) alarms for every unknown site."""
        return [
            Alarm(
                site_id=site_id,
                line=line,
                op_key=op_key,
                instance=UNRESOLVED_INSTANCE,
                definite=False,
            )
            for site_id, (line, op_key) in sorted(
                self.unknown_sites.items()
            )
        ]

    def to_report(self) -> CertificationReport:
        """A sound, conservative report: unknown sites become alarms."""
        alarms = sorted(
            list(self.alarms) + self.unknown_alarms(),
            key=lambda a: (a.site_id, a.instance),
        )
        stats: Dict[str, object] = dict(self.stats)
        stats.update(
            partial=True,
            breach=self.breach,
            nodes_analyzed=self.nodes_analyzed,
            nodes_total=self.nodes_total,
            unknown_sites=len(self.unknown_sites),
        )
        return CertificationReport(
            subject=self.subject,
            engine=self.engine,
            alarms=alarms,
            stats=stats,
        )

    def to_json(self) -> Dict[str, object]:
        return {
            "engine": self.engine,
            "breach": self.breach,
            "alarms": len(self.alarms),
            "alarm_lines": sorted({a.line for a in self.alarms}),
            "unknown_sites": len(self.unknown_sites),
            "nodes_analyzed": self.nodes_analyzed,
            "nodes_total": self.nodes_total,
        }


def make_partial(
    *,
    engine: str,
    subject: str,
    breach: str,
    alarms: Iterable[Alarm],
    site_universe: Dict[int, Tuple[int, str]],
    nodes_analyzed: int = 0,
    nodes_total: int = 0,
    stats: Optional[Dict[str, object]] = None,
) -> PartialResult:
    """Build a partial result: unknown = universe minus alarmed sites."""
    alarm_list = list(alarms)
    alarmed = {alarm.site_id for alarm in alarm_list}
    unknown = {
        site_id: info
        for site_id, info in site_universe.items()
        if site_id not in alarmed
    }
    return PartialResult(
        engine=engine,
        subject=subject,
        breach=breach,
        alarms=alarm_list,
        unknown_sites=unknown,
        nodes_analyzed=nodes_analyzed,
        nodes_total=nodes_total,
        stats=dict(stats or {}),
    )


def exhausted_from(error: BaseException, **partial_kwargs) -> ResourceExhausted:
    """Normalize a caught breach into ``ResourceExhausted`` + partial.

    ``error`` may be a :class:`ResourceExhausted` (from the governor or
    an engine-internal budget) or a ``MemoryError``; the partial built
    from ``partial_kwargs`` (see :func:`make_partial`, minus ``breach``)
    is attached unless one is already present.
    """
    if isinstance(error, ResourceExhausted):
        breach = error.breach
    elif isinstance(error, MemoryError):
        breach = "memory"
    else:
        breach = "error"
    partial = make_partial(breach=breach, **partial_kwargs)
    if isinstance(error, ResourceExhausted):
        if error.partial is None:
            error.partial = partial
        return error
    wrapped = ResourceExhausted(
        f"{type(error).__name__}: {error}", breach=breach, partial=partial
    )
    wrapped.__cause__ = error
    return wrapped


# -- site universes -------------------------------------------------------------


def collect_sites(checks: Iterable[object]) -> Dict[int, Tuple[int, str]]:
    """``site_id -> (line, op_key)`` over check-shaped objects."""
    sites: Dict[int, Tuple[int, str]] = {}
    for check in checks:
        sites.setdefault(
            check.site_id,  # type: ignore[attr-defined]
            (check.line, check.op_key),  # type: ignore[attr-defined]
        )
    return sites


def boolprog_sites(program) -> Dict[int, Tuple[int, str]]:
    """Check sites of a transformed boolean program."""
    return collect_sites(
        check for edge in program.edges for check in edge.checks
    )


def tvp_sites(tvp) -> Dict[int, Tuple[int, str]]:
    """Check sites of a specialized TVP program."""
    return collect_sites(
        check for edge in tvp.edges for check in edge.action.checks
    )


def op_has_requires(spec, op_key: str) -> bool:
    """Can the operation at a call site raise a conformance alarm?"""
    if op_key.startswith("copy "):
        return False
    if op_key.startswith("new "):
        decl = spec.classes.get(op_key[len("new "):])
        ctor = decl.constructor if decl is not None else None
        return bool(ctor is not None and ctor.requires_clauses())
    class_name, _, method = op_key.partition(".")
    decl = spec.classes.get(class_name)
    mdecl = decl.methods.get(method) if decl is not None else None
    return bool(mdecl is not None and mdecl.requires_clauses())


def cfg_sites(cfg, spec) -> Dict[int, Tuple[int, str]]:
    """Checkable component call sites of a 3-address CFG."""
    from repro.lang.cfg import SCallComp

    return collect_sites(
        edge.stm
        for edge in cfg.edges
        if isinstance(edge.stm, SCallComp)
        and op_has_requires(spec, edge.stm.op_key)
    )


def program_sites(program) -> Dict[int, Tuple[int, str]]:
    """Checkable component call sites of a parsed client program."""
    return {
        site.site_id: (site.line, site.op_key)
        for site in program.call_sites.values()
        if op_has_requires(program.spec, site.op_key)
    }


# -- the degradation ladder -----------------------------------------------------

#: default degradation tails, most precise engine first.  Every tail ends
#: in an engine that cannot blow up (``fds`` is the polynomial staged
#: certifier over the boolean program — the cheapest sound tier).
DEFAULT_LADDER: Dict[str, Tuple[str, ...]] = {
    "tvla-relational": ("tvla-independent", "fds"),
    "tvla-independent": ("fds",),
    "relational": ("fds",),
    "interproc": ("fds",),
    "shapegraph": ("allocsite",),
    "allocsite-recency": ("allocsite",),
}


@dataclass(frozen=True)
class DegradationLadder:
    """An ordered tuple of engine rungs, most precise first."""

    rungs: Tuple[str, ...]

    @classmethod
    def default_for(cls, engine: str) -> "DegradationLadder":
        return cls((engine,) + DEFAULT_LADDER.get(engine, ()))

    @classmethod
    def from_option(cls, option, engine: str) -> Optional["DegradationLadder"]:
        """Resolve a ``CertifyOptions.ladder`` value.

        ``None``/``False``/``()`` disable the ladder; ``True`` selects
        the engine's default tail; a tuple of engine names is explicit.
        """
        if option is None or option is False or option == ():
            return None
        if option is True:
            return cls.default_for(engine)
        return cls(tuple(option))

    def rungs_from(self, engine: str) -> Tuple[str, ...]:
        """The rung sequence starting at ``engine``."""
        if engine in self.rungs:
            return self.rungs[self.rungs.index(engine):]
        return (engine,) + tuple(r for r in self.rungs if r != engine)


class SiteLedger:
    """Per-site verdict accumulation across ladder rungs.

    First resolution wins: a breached rung resolves only the sites it
    *alarmed* (its certifications are not complete, hence not proofs);
    a completed rung resolves every still-open site — certified when it
    raised no alarm there, alarmed otherwise.  Sites still open after
    the last rung surface as conservative :data:`UNRESOLVED_INSTANCE`
    alarms, never as silent passes.
    """

    def __init__(self, universe: Dict[int, Tuple[int, str]]) -> None:
        self.universe = dict(universe)
        self.alarms: Dict[int, List[Alarm]] = {}
        self.certified: Set[int] = set()
        #: alarm sites recovered from *breached* (partial) rungs
        self.salvaged: Set[int] = set()

    def resolved_sites(self) -> Set[int]:
        return self.certified | set(self.alarms)

    def unresolved(self) -> Dict[int, Tuple[int, str]]:
        resolved = self.resolved_sites()
        return {
            site_id: info
            for site_id, info in self.universe.items()
            if site_id not in resolved
        }

    def absorb_partial(self, partial: PartialResult) -> int:
        """Record a breached rung; returns how many sites it salvaged."""
        fresh = 0
        for alarm in partial.alarms:
            if alarm.site_id in self.certified:
                continue
            bucket = self.alarms.setdefault(alarm.site_id, [])
            if alarm.site_id not in self.salvaged and not bucket:
                fresh += 1
            if all(have.instance != alarm.instance for have in bucket):
                bucket.append(alarm)
            self.salvaged.add(alarm.site_id)
            self.universe.setdefault(
                alarm.site_id, (alarm.line, alarm.op_key)
            )
        return fresh

    def absorb_report(self, report: CertificationReport) -> None:
        """Record a completed rung: it settles every still-open site."""
        by_site: Dict[int, List[Alarm]] = {}
        for alarm in report.alarms:
            by_site.setdefault(alarm.site_id, []).append(alarm)
        for site_id in list(self.unresolved()):
            found = by_site.get(site_id)
            if found:
                self.alarms[site_id] = list(found)
            else:
                self.certified.add(site_id)
        for site_id, found in by_site.items():
            if (
                site_id not in self.alarms
                and site_id not in self.certified
            ):
                # alarmed outside the recorded universe: keep it
                self.alarms[site_id] = list(found)
                self.universe.setdefault(
                    site_id, (found[0].line, found[0].op_key)
                )

    def final_alarms(self) -> List[Alarm]:
        out = [
            alarm
            for bucket in self.alarms.values()
            for alarm in bucket
        ]
        for site_id, (line, op_key) in sorted(self.unresolved().items()):
            out.append(
                Alarm(
                    site_id=site_id,
                    line=line,
                    op_key=op_key,
                    instance=UNRESOLVED_INSTANCE,
                    definite=False,
                )
            )
        out.sort(key=lambda a: (a.site_id, a.instance))
        return out
