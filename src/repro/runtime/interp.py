"""Exhaustive concrete interpreter for Jlite CFGs (the ground truth).

The interpreter executes the client under the *nondeterministic client
semantics*: ``?`` branch conditions take both outcomes, reference
comparisons are evaluated concretely, loops unroll until a per-path step
budget runs out, and every component interaction executes the Easl
specification concretely (:mod:`repro.runtime.jcf`).  A failing
``requires`` terminates the path — mirroring the thrown
``ConcurrentModificationException`` — and records a *real error* at the
site; a null dereference terminates the path silently (an NPE is not a
conformance violation).

Because this is exactly the semantics the certifiers over-approximate,
alarm sets are directly comparable: soundness means every site that can
fail is alarmed; precision is measured by alarms at sites that never fail
(false alarms).  Exploration is bounded (paths × steps), so the ground
truth is a *lower* bound on real errors — the comparison helpers report
whether budgets were exhausted.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union

from repro.lang.cfg import (
    SAssume,
    SCallClient,
    SCallComp,
    SCopy,
    SLoad,
    SNewClient,
    SNop,
    SNull,
    SReturn,
    SStore,
)
from repro.lang.types import MethodInfo, Program
from repro.runtime.jcf import (
    ComponentHeap,
    ComponentObject,
    ConformanceViolation,
    NullDereference,
)


@dataclass(eq=False)
class ClientObject:
    oid: int
    class_name: str
    fields: Dict[str, object] = field(default_factory=dict)

    def __repr__(self) -> str:
        return f"<{self.class_name}#{self.oid}>"


Value = Union[ComponentObject, ClientObject, None]


@dataclass
class ExplorationBudget:
    """Caps on the exhaustive exploration."""

    max_paths: int = 20_000
    max_steps_per_path: int = 600
    max_call_depth: int = 24


@dataclass
class SiteTruth:
    site_id: int
    line: int
    op_key: str
    fail_count: int = 0
    pass_count: int = 0

    @property
    def may_fail(self) -> bool:
        return self.fail_count > 0

    @property
    def may_pass(self) -> bool:
        return self.pass_count > 0


@dataclass
class GroundTruth:
    """Observed behaviour of every component call site."""

    sites: Dict[int, SiteTruth]
    paths_explored: int
    truncated: bool  # a budget was hit: the truth is a lower bound

    def failing_sites(self) -> set:
        return {s for s, t in self.sites.items() if t.may_fail}

    def failing_lines(self) -> set:
        return {t.line for t in self.sites.values() if t.may_fail}

    def compare(self, alarm_sites: set) -> "PrecisionSummary":
        real = self.failing_sites()
        false_alarms = {s for s in alarm_sites if s not in real}
        missed = real - alarm_sites
        return PrecisionSummary(
            real_errors=len(real),
            alarms=len(alarm_sites),
            false_alarms=len(false_alarms),
            missed_errors=len(missed),
            false_alarm_sites=sorted(false_alarms),
            missed_sites=sorted(missed),
            truth_truncated=self.truncated,
        )


@dataclass
class PrecisionSummary:
    real_errors: int
    alarms: int
    false_alarms: int
    missed_errors: int
    false_alarm_sites: List[int]
    missed_sites: List[int]
    truth_truncated: bool

    @property
    def sound(self) -> bool:
        """No missed errors (required of every certifier)."""
        return self.missed_errors == 0

    @property
    def exact(self) -> bool:
        return self.sound and self.false_alarms == 0


# -- machine state -----------------------------------------------------------------


@dataclass
class _Frame:
    method: MethodInfo
    env: Dict[str, Value]
    node: int
    result_var: Optional[str]  # where the caller wants the return value
    return_value: Value = None


@dataclass
class _State:
    frames: List[_Frame]
    statics: Dict[str, Value]
    steps: int = 0

    def clone(self) -> "_State":
        memo: Dict[int, Value] = {}

        def cv(value: Value) -> Value:
            if value is None:
                return None
            key = id(value)
            if key in memo:
                return memo[key]
            if isinstance(value, ComponentObject):
                fresh = ComponentObject(value.oid, value.class_name, {})
            else:
                fresh = ClientObject(value.oid, value.class_name, {})
            memo[key] = fresh
            for name, fv in value.fields.items():
                fresh.fields[name] = cv(fv)
            return fresh

        frames = [
            _Frame(
                f.method,
                {k: cv(v) for k, v in f.env.items()},
                f.node,
                f.result_var,
                cv(f.return_value),
            )
            for f in self.frames
        ]
        statics = {k: cv(v) for k, v in self.statics.items()}
        return _State(frames, statics, self.steps)


class _PathDead(Exception):
    """Internal: the current path terminated (NPE, violation, budget)."""


def explore(
    program: Program,
    budget: Optional[ExplorationBudget] = None,
    entry: Optional[str] = None,
) -> GroundTruth:
    """Exhaustively explore the client from its entry point."""
    budget = budget or ExplorationBudget()
    heap = ComponentHeap(program.spec)
    sites: Dict[int, SiteTruth] = {
        sid: SiteTruth(sid, cs.line, cs.op_key)
        for sid, cs in program.call_sites.items()
    }
    entry_method = program.method(entry) if entry else program.entry
    initial = _State(
        frames=[
            _Frame(
                entry_method,
                {name: None for name, _t in entry_method.params},
                entry_method.cfg.entry,  # type: ignore[union-attr]
                None,
            )
        ],
        statics={name: None for name in program.statics},
    )
    stack: List[_State] = [initial]
    paths = 0
    truncated = False
    client_ids = itertools.count(1)

    while stack:
        if paths >= budget.max_paths:
            truncated = True
            break
        state = stack.pop()
        # run this path to the next split, termination, or budget
        while True:
            if not state.frames:
                paths += 1
                break
            frame = state.frames[-1]
            cfg = frame.method.cfg
            assert cfg is not None
            if frame.node == cfg.exit:
                # method returns
                returned = frame.return_value
                result_var = frame.result_var
                state.frames.pop()
                if state.frames and result_var is not None:
                    state.frames[-1].env[result_var] = returned
                continue
            edges = cfg.out_edges(frame.node)
            feasible = []
            for edge in edges:
                if isinstance(edge.stm, SAssume):
                    if _assume_holds(edge.stm, frame, state):
                        feasible.append(edge)
                else:
                    feasible.append(edge)
            if not feasible:
                paths += 1
                break
            if state.steps >= budget.max_steps_per_path:
                truncated = True
                paths += 1
                break
            state.steps += 1
            # split on nondeterminism
            for extra in feasible[1:]:
                forked = state.clone()
                try:
                    _step(
                        forked, extra, program, heap, sites, budget, client_ids
                    )
                except _PathDead:
                    paths += 1
                else:
                    stack.append(forked)
            try:
                _step(
                    state, feasible[0], program, heap, sites, budget,
                    client_ids,
                )
            except _PathDead:
                paths += 1
                break

    return GroundTruth(sites, paths, truncated)


def _assume_holds(stm: SAssume, frame: _Frame, state: _State) -> bool:
    lhs = _read(stm.lhs, frame, state)
    rhs = None if stm.rhs == "null" else _read(stm.rhs, frame, state)
    return (lhs is rhs) == stm.equal


def _read(var: str, frame: _Frame, state: _State) -> Value:
    if var in frame.env:
        return frame.env[var]
    if var in state.statics:
        return state.statics[var]
    # an unassigned local reads as null
    return None


def _write(var: str, value: Value, frame: _Frame, state: _State) -> None:
    if var in state.statics:
        state.statics[var] = value
    else:
        frame.env[var] = value


def _step(
    state: _State,
    edge,
    program: Program,
    heap: ComponentHeap,
    sites: Dict[int, SiteTruth],
    budget: ExplorationBudget,
    client_ids,
) -> None:
    frame = state.frames[-1]
    stm = edge.stm
    if isinstance(stm, (SNop, SAssume)):
        pass
    elif isinstance(stm, SCopy):
        _write(stm.dst, _read(stm.src, frame, state), frame, state)
    elif isinstance(stm, SNull):
        _write(stm.dst, None, frame, state)
    elif isinstance(stm, SLoad):
        base = _read(stm.base, frame, state)
        if base is None:
            raise _PathDead()  # NPE
        _write(stm.dst, base.fields.get(stm.field), frame, state)
    elif isinstance(stm, SStore):
        base = _read(stm.base, frame, state)
        if base is None:
            raise _PathDead()  # NPE
        base.fields[stm.field] = _read(stm.src, frame, state)
    elif isinstance(stm, SNewClient):
        cinfo = program.classes[stm.class_name]
        obj = ClientObject(
            next(client_ids),
            stm.class_name,
            {
                name: None
                for name, fi in cinfo.fields.items()
                if not fi.is_static
            },
        )
        _write(stm.dst, obj, frame, state)
    elif isinstance(stm, SCallComp):
        truth = sites[stm.site_id]
        op = program.spec.operation(stm.op_key)
        values = {}
        for operand_name, var in stm.bindings:
            value = _read(var, frame, state)
            if operand_name != "r" and operand_name != "ret":
                if value is not None and not isinstance(
                    value, ComponentObject
                ):
                    raise _PathDead()
                values[operand_name] = value
        try:
            result = heap.execute(op, values)
        except ConformanceViolation:
            truth.fail_count += 1
            raise _PathDead() from None
        except NullDereference:
            raise _PathDead() from None
        truth.pass_count += 1
        result_operand = op.operand("result")
        if result_operand is not None:
            result_var = stm.binding(result_operand.name)
            if result_var is not None:
                _write(result_var, result, frame, state)
    elif isinstance(stm, SCallClient):
        if len(state.frames) >= budget.max_call_depth:
            raise _PathDead()
        callee = program.method(stm.callee)
        env: Dict[str, Value] = {}
        if stm.receiver is not None:
            receiver = _read(stm.receiver, frame, state)
            if receiver is None:
                raise _PathDead()  # NPE
            env["this"] = receiver
        for (pname, _pt), arg in zip(callee.params, stm.args):
            env[pname] = _read(arg, frame, state)
        frame.node = edge.dst  # return point
        state.frames.append(
            _Frame(callee, env, callee.cfg.entry, stm.result)  # type: ignore[union-attr]
        )
        return
    elif isinstance(stm, SReturn):
        if stm.var is not None:
            frame.return_value = _read(stm.var, frame, state)
        frame.node = edge.dst
        return
    else:
        raise TypeError(f"unknown statement {stm!r}")
    frame.node = edge.dst
