"""Bounded, stats-reporting memoization for staged-certification results.

The staging argument (Section 1.3) is that derivation cost is paid once
per *specification* and amortized over every client certified against
it.  The facade used to keep that amortization in an unbounded
module-global dict; a long-running service certifying against many specs
(or many derivation-parameter combinations) would grow it forever, and
nothing reported whether the cache was earning its keep.  This module
provides the replacement:

* :class:`LRUCache` — a small thread-safe LRU with hit / miss / eviction
  counters, snapshot-able as :class:`CacheStats` (surfaced by the batch
  summary and the ``repro batch`` CLI);
* :func:`stable_key` — defensive normalization of arbitrary keyword
  arguments into a hashable, deterministic key.  The previous cache key,
  ``tuple(sorted(kwargs.items()))``, raised ``TypeError`` as soon as a
  kwarg value was unhashable (a list budget, a dict of options); the
  normalized form keeps equal values equal and never refuses a key.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Dict, Hashable, Mapping


@dataclass(frozen=True)
class CacheStats:
    """A point-in-time snapshot of one cache's counters."""

    name: str
    size: int
    maxsize: int
    hits: int
    misses: int
    evictions: int

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def to_json(self) -> Dict[str, object]:
        return {
            "name": self.name,
            "size": self.size,
            "maxsize": self.maxsize,
            "hits": self.hits,
            "misses": self.misses,
            "evictions": self.evictions,
            "hit_rate": round(self.hit_rate, 4),
        }

    def __str__(self) -> str:
        return (
            f"{self.name}: {self.size}/{self.maxsize} entries, "
            f"{self.hits} hits, {self.misses} misses, "
            f"{self.evictions} evictions"
        )


class LRUCache:
    """Thread-safe least-recently-used cache with usage counters."""

    def __init__(self, maxsize: int = 64, name: str = "cache") -> None:
        if maxsize < 1:
            raise ValueError("maxsize must be at least 1")
        self.name = name
        self.maxsize = maxsize
        self._data: "OrderedDict[Hashable, Any]" = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._data

    def get_or_create(
        self, key: Hashable, factory: Callable[[], Any]
    ) -> Any:
        """Return the cached value, creating (and counting) on miss.

        The factory runs outside the lock — derivation can take seconds
        and must not serialize unrelated lookups.  Concurrent misses on
        the same key may both run the factory; the first store wins.
        """
        with self._lock:
            if key in self._data:
                self._hits += 1
                self._data.move_to_end(key)
                return self._data[key]
            self._misses += 1
        value = factory()
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
                return self._data[key]
            self._data[key] = value
            while len(self._data) > self.maxsize:
                self._data.popitem(last=False)
                self._evictions += 1
        return value

    def get(self, key: Hashable, default: Any = None) -> Any:
        with self._lock:
            if key in self._data:
                self._hits += 1
                self._data.move_to_end(key)
                return self._data[key]
            self._misses += 1
            return default

    def put(self, key: Hashable, value: Any) -> None:
        with self._lock:
            self._data[key] = value
            self._data.move_to_end(key)
            while len(self._data) > self.maxsize:
                self._data.popitem(last=False)
                self._evictions += 1

    def items(self):
        with self._lock:
            return list(self._data.items())

    def clear(self) -> None:
        with self._lock:
            self._data.clear()

    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                name=self.name,
                size=len(self._data),
                maxsize=self.maxsize,
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
            )


def stable_key(value: Any) -> Hashable:
    """Normalize ``value`` into a hashable, deterministic cache key.

    Mappings and sets are order-normalized, sequences recurse, and a
    value that is neither a known container nor hashable degrades to its
    ``repr`` (tagged with its type) rather than raising ``TypeError``.
    Equal containers therefore produce equal keys regardless of
    insertion order, and *no* input is rejected.
    """
    if isinstance(value, Mapping):
        return (
            "map",
            tuple(
                sorted(
                    ((stable_key(k), stable_key(v)) for k, v in value.items()),
                    key=repr,
                )
            ),
        )
    if isinstance(value, (set, frozenset)):
        return ("set", tuple(sorted((stable_key(v) for v in value), key=repr)))
    if isinstance(value, (list, tuple)):
        return ("seq", tuple(stable_key(v) for v in value))
    try:
        hash(value)
    except TypeError:
        return ("repr", type(value).__name__, repr(value))
    return value
