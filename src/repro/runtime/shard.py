"""SCC-sharded certification across a process pool.

The TVLA fixpoint is sequential over one worklist, so a single large
client uses one core no matter how wide its control-flow graph is.  But
the *condensation* of the CFG — its strongly connected components,
collapsed — is a DAG: once every predecessor component has reached its
fixpoint, a component's entry states are final, and components with no
path between them are independent.  This module exploits that:

1. :func:`tarjan_scc` / :func:`condense` compute the SCC DAG of any
   successor graph (iterative Tarjan, no recursion limit exposure);
2. :func:`shard_plan` layers the condensation of a specialized TVP into
   *stages* — antichains whose members only depend on earlier stages;
3. :func:`certify_sharded` runs each stage's shards concurrently on a
   process pool, shipping boundary structures between stages as
   canonical certificate JSON.  The specialized TVP, the engine (with
   its compiled formulas and transfer memo), and the derived
   abstraction are built once in the parent: a forked pool inherits
   them for free, a spawn pool rebuilds from a pickled recipe in the
   initializer.

Relational mode is exact under sharding: per-node states are sets
unioned by canonical key, so the staged fixpoint computes the same
annotation and the same alarms as the sequential engine regardless of
execution order.  Independent mode is supported but joins boundary
structures in stage order, which can differ from the sequential
engine's join order on programs where join is not order-insensitive.
"""

from __future__ import annotations

import os
import pickle
import time
from collections import deque
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

import multiprocessing

from repro.certifier.report import CertificationReport

# -- SCC / condensation utilities ----------------------------------------------


def tarjan_scc(nodes: Iterable[int], successors) -> List[List[int]]:
    """Strongly connected components, in reverse topological order.

    ``successors(node)`` yields the out-neighbours.  Iterative (explicit
    stack), so deep CFGs cannot hit the recursion limit.
    """
    index: Dict[int, int] = {}
    lowlink: Dict[int, int] = {}
    on_stack: Dict[int, bool] = {}
    stack: List[int] = []
    counter = [0]
    sccs: List[List[int]] = []

    for root in nodes:
        if root in index:
            continue
        # frames: (node, iterator over successors)
        work = [(root, iter(list(successors(root))))]
        index[root] = lowlink[root] = counter[0]
        counter[0] += 1
        stack.append(root)
        on_stack[root] = True
        while work:
            node, succ_iter = work[-1]
            advanced = False
            for succ in succ_iter:
                if succ not in index:
                    index[succ] = lowlink[succ] = counter[0]
                    counter[0] += 1
                    stack.append(succ)
                    on_stack[succ] = True
                    work.append((succ, iter(list(successors(succ)))))
                    advanced = True
                    break
                if on_stack.get(succ):
                    lowlink[node] = min(lowlink[node], index[succ])
            if advanced:
                continue
            work.pop()
            if work:
                parent = work[-1][0]
                lowlink[parent] = min(lowlink[parent], lowlink[node])
            if lowlink[node] == index[node]:
                component: List[int] = []
                while True:
                    member = stack.pop()
                    on_stack[member] = False
                    component.append(member)
                    if member == node:
                        break
                sccs.append(sorted(component))
    return sccs


@dataclass
class Condensation:
    """The SCC DAG of a successor graph.

    ``sccs`` is in topological order (every cross edge goes from a lower
    index to a higher one); ``succs[i]`` are the successor components of
    component ``i``.
    """

    sccs: List[List[int]]
    scc_of: Dict[int, int]
    succs: List[List[int]] = field(default_factory=list)

    def stages(self) -> List[List[int]]:
        """Topological layers: stage ``k`` holds the components whose
        longest dependency chain has length ``k``.  Components within a
        stage are mutually unreachable, hence independently solvable."""
        level = [0] * len(self.sccs)
        for i in range(len(self.sccs)):
            for j in self.succs[i]:
                level[j] = max(level[j], level[i] + 1)
        layered: Dict[int, List[int]] = {}
        for i, lvl in enumerate(level):
            layered.setdefault(lvl, []).append(i)
        return [layered[lvl] for lvl in sorted(layered)]

    @property
    def width(self) -> int:
        """The widest stage — the available shard-level parallelism."""
        return max(len(stage) for stage in self.stages())


def condense(nodes: Iterable[int], successors) -> Condensation:
    rev = tarjan_scc(nodes, successors)
    sccs = list(reversed(rev))  # topological order
    scc_of = {
        node: idx for idx, members in enumerate(sccs) for node in members
    }
    succs: List[List[int]] = []
    for idx, members in enumerate(sccs):
        out = set()
        for node in members:
            for succ in successors(node):
                j = scc_of[succ]
                if j != idx:
                    out.add(j)
        succs.append(sorted(out))
    return Condensation(sccs=sccs, scc_of=scc_of, succs=succs)


def shard_plan(tvp) -> Condensation:
    """The condensation of a specialized TVP's control-flow graph."""
    return condense(
        sorted(tvp.nodes()),
        lambda node: [edge.dst for edge in tvp.out_edges(node)],
    )


# -- per-shard fixpoint --------------------------------------------------------


def _solve_shard(engine_obj, members: Sequence[int], seeds):
    """Run the fixpoint restricted to one SCC.

    ``seeds`` maps member nodes to their entry states: a dict
    ``{canonical_key: structure}`` in relational mode, a single
    structure in independent mode.  Returns ``(boundary, alarms,
    iterations, max_structures)`` where ``boundary`` maps *external*
    destination nodes to the structures transferred out of the shard.

    Edges are applied by their source shard, so each edge's checks run
    exactly once per reaching structure — alarms partition cleanly
    across shards.
    """
    from repro.tvla.engine import _CheckContribution  # noqa: F401

    tvp = engine_obj.tvp
    preds = engine_obj.abstraction_preds
    member_set = set(members)
    alarms: Dict[Tuple[int, str], object] = {}
    iterations = 0
    max_structures = 1
    worklist = deque(sorted(seeds))
    queued = set(worklist)
    transfers = engine_obj._transfers if engine_obj.memoize_transfers else None

    if engine_obj.mode == "relational":
        states = {node: dict(bucket) for node, bucket in seeds.items()}
        boundary: Dict[int, Dict[object, object]] = {}
        while worklist:
            node = worklist.popleft()
            queued.discard(node)
            iterations += 1
            if iterations > engine_obj.iteration_budget:
                from repro.tvla.engine import TvlaBudgetExceeded

                raise TvlaBudgetExceeded("iteration budget exceeded")
            here = list(states.get(node, {}).items())
            for edge in tvp.out_edges(node):
                action_id = id(edge.action)
                for skey, structure in here:
                    cached = (
                        transfers.get((action_id, skey))
                        if transfers is not None
                        else None
                    )
                    if cached is None:
                        local: Dict[Tuple[int, str], object] = {}
                        cached = (
                            [
                                (out.canonical_key(preds), out)
                                for out in engine_obj.apply(
                                    structure, edge.action, local
                                )
                            ],
                            local,
                        )
                        if transfers is not None:
                            transfers[(action_id, skey)] = cached
                    outs, contribs = cached
                    _merge_contribs(alarms, contribs)
                    internal = edge.dst in member_set
                    bucket = (
                        states.setdefault(edge.dst, {})
                        if internal
                        else boundary.setdefault(edge.dst, {})
                    )
                    changed = False
                    for okey, out in outs:
                        if okey in bucket:
                            continue
                        bucket[okey] = out
                        changed = True
                        max_structures = max(max_structures, len(bucket))
                        if len(bucket) > engine_obj.structure_budget:
                            from repro.tvla.engine import TvlaBudgetExceeded

                            raise TvlaBudgetExceeded(
                                f"more than {engine_obj.structure_budget} "
                                f"structures at node {edge.dst}",
                                breach="structures",
                            )
                    if internal and changed and edge.dst not in queued:
                        worklist.append(edge.dst)
                        queued.add(edge.dst)
        return boundary, alarms, iterations, max_structures

    single = dict(seeds)
    boundary_single: Dict[int, object] = {}
    while worklist:
        node = worklist.popleft()
        queued.discard(node)
        iterations += 1
        if iterations > engine_obj.iteration_budget:
            from repro.tvla.engine import TvlaBudgetExceeded

            raise TvlaBudgetExceeded("iteration budget exceeded")
        current = single.get(node)
        if current is None:
            continue
        for edge in tvp.out_edges(node):
            for out in engine_obj.apply(current, edge.action, alarms):
                internal = edge.dst in member_set
                store = single if internal else boundary_single
                old = store.get(edge.dst)
                if old is None:
                    merged = out
                else:
                    merged = type(old).join(old, out, preds).canonicalize(
                        preds
                    )
                old_key = None if old is None else old.canonical_key(preds)
                if old_key != merged.canonical_key(preds):
                    store[edge.dst] = merged
                    if internal and edge.dst not in queued:
                        worklist.append(edge.dst)
                        queued.add(edge.dst)
    return boundary_single, alarms, iterations, max_structures


def _merge_contribs(alarms, contribs) -> None:
    from repro.tvla.engine import _CheckContribution

    for key, contrib in contribs.items():
        existing = alarms.get(key)
        if existing is None:
            alarms[key] = _CheckContribution(
                line=contrib.line,
                op_key=contrib.op_key,
                instance=contrib.instance,
                alarmed=contrib.alarmed,
                all_fail=contrib.all_fail,
            )
        else:
            existing.merge(contrib.alarmed, contrib.all_fail)


# -- process-pool plumbing -----------------------------------------------------

#: worker-side shard context: (engine_obj, plan).  With a forked pool
#: the parent assigns this *before* creating the pool and children
#: inherit the warm engine — compiled formulas, transfer memo and all —
#: at zero marshalling cost.  A spawn pool rebuilds it from the pickled
#: recipe in :func:`_init_shard_worker`.
_SHARD_CTX: Optional[tuple] = None


def _init_shard_worker(recipe_blob: Optional[bytes]) -> None:
    global _SHARD_CTX
    if recipe_blob is None:
        return  # fork: context inherited
    from repro.api import CertifySession
    from repro.easl.library import get_spec
    from repro.lang.types import parse_program

    spec_name, source, engine, options = pickle.loads(recipe_blob)
    spec = get_spec(spec_name)
    session = CertifySession(spec, engine, options)
    program = parse_program(source, spec)
    arts = session.artifacts(program, engine, source_key=source)
    _SHARD_CTX = (arts["engine_obj"], shard_plan(arts["tvp"]))


def _decode_structures(entries, engine_obj, preds):
    from repro.cert import model
    from repro.logic import packed as packed_kernel

    out = []
    for entry in entries:
        structure = model.structure_from_json(entry)
        if engine_obj.packed:
            structure = packed_kernel.PackedStructure.from_dense(structure)
        out.append(structure.canonicalize(preds))
    return out


def _worker_solve(item: Tuple[int, List[Tuple[int, List[dict]]]]):
    """Pool entry: solve one shard from serialized seeds.

    Returns ``(scc_index, boundary_json, alarm_rows, iterations,
    max_structures, pid)`` where ``boundary_json`` maps external nodes
    to canonical structure JSON and ``alarm_rows`` flattens the check
    contributions.
    """
    from repro.cert import model

    assert _SHARD_CTX is not None, "shard worker has no context"
    engine_obj, plan = _SHARD_CTX
    scc_index, seeds_json = item
    preds = engine_obj.abstraction_preds
    members = plan.sccs[scc_index]
    if engine_obj.mode == "relational":
        seeds = {
            node: {
                s.canonical_key(preds): s
                for s in _decode_structures(entries, engine_obj, preds)
            }
            for node, entries in seeds_json
        }
    else:
        seeds = {
            node: _decode_structures(entries, engine_obj, preds)[0]
            for node, entries in seeds_json
        }
    boundary, alarms, iterations, max_structures = _solve_shard(
        engine_obj, members, seeds
    )
    if engine_obj.mode == "relational":
        boundary_json = {
            dst: [
                model.structure_to_json(s, preds)
                for s in bucket.values()
            ]
            for dst, bucket in boundary.items()
        }
    else:
        boundary_json = {
            dst: [model.structure_to_json(s, preds)]
            for dst, s in boundary.items()
        }
    alarm_rows = [
        (key, c.line, c.op_key, c.instance, c.alarmed, c.all_fail)
        for key, c in alarms.items()
    ]
    return (
        scc_index,
        boundary_json,
        alarm_rows,
        iterations,
        max_structures,
        os.getpid(),
    )


# -- the sharded certifier -----------------------------------------------------


@dataclass
class ShardedResult:
    """Outcome of one sharded certification."""

    report: CertificationReport
    shards: int
    stages: int
    #: widest stage: how many shards ever ran concurrently
    parallel_shards: int
    workers: int
    seconds: float
    #: distinct worker PIDs that solved at least one shard
    pids: List[int] = field(default_factory=list)


def certify_sharded(
    spec,
    source: str,
    *,
    engine: str = "tvla-relational",
    options=None,
    workers: int = 1,
) -> ShardedResult:
    """Certify one client by fanning its CFG's SCC condensation out
    across a process pool.

    ``workers=1`` solves the shards sequentially in-process (identical
    results, no pool overhead) — the baseline the scaling numbers are
    measured against.  The engine must be a ``tvla-*`` mode; relational
    sharding is exact (see the module docstring).
    """
    from repro.api import CertifyOptions, CertifySession
    from repro.cert import model
    from repro.easl.library import get_spec
    from repro.lang.types import parse_program
    from repro.tvla.engine import _alarm_list

    if not engine.startswith("tvla-"):
        raise ValueError(
            f"sharded certification needs a tvla-* engine, got {engine!r}"
        )
    started = time.perf_counter()
    spec_obj = get_spec(spec) if isinstance(spec, str) else spec
    options = options or CertifyOptions()
    session = CertifySession(spec_obj, engine, options)
    program = parse_program(source, spec_obj)
    arts = session.artifacts(program, engine, source_key=source)
    engine_obj = arts["engine_obj"]
    tvp = arts["tvp"]
    plan = shard_plan(tvp)
    preds = engine_obj.abstraction_preds
    mode = engine_obj.mode

    global _SHARD_CTX
    _SHARD_CTX = (engine_obj, plan)
    workers = max(1, int(workers))
    pool = None
    try:
        if workers > 1 and plan.width > 1:
            context = _mp_context()
            recipe = None
            if context.get_start_method() != "fork":
                recipe = pickle.dumps(
                    (spec_obj.name, source, engine, options)
                )
            pool = ProcessPoolExecutor(
                max_workers=workers,
                mp_context=context,
                initializer=_init_shard_worker,
                initargs=(recipe,),
            )

        initial = engine_obj.initial_structure().canonicalize(preds)
        # pending entry states per node, as canonical JSON (the wire
        # format doubles as the cross-producer dedup key)
        pending: Dict[int, Dict[str, dict]] = {
            tvp.entry: {
                model.canonical_text(
                    model.structure_to_json(initial, preds)
                ): model.structure_to_json(initial, preds)
            }
        }
        alarms: Dict[Tuple[int, str], object] = {}
        iterations = 0
        max_structures = 1
        pids = set()
        solved = 0
        for stage in plan.stages():
            items = []
            for scc_index in stage:
                seeds_json = []
                for node in plan.sccs[scc_index]:
                    bucket = pending.pop(node, None)
                    if bucket:
                        seeds_json.append((node, list(bucket.values())))
                if seeds_json:
                    items.append((scc_index, seeds_json))
            if not items:
                continue
            if pool is not None and len(items) > 1:
                outcomes = list(pool.map(_worker_solve, items))
            else:
                outcomes = [_worker_solve(item) for item in items]
            for (
                _scc_index,
                boundary_json,
                alarm_rows,
                its,
                maxs,
                pid,
            ) in outcomes:
                solved += 1
                iterations += its
                max_structures = max(max_structures, maxs)
                pids.add(pid)
                _merge_alarm_rows(alarms, alarm_rows)
                for dst, entries in boundary_json.items():
                    if mode == "relational":
                        bucket = pending.setdefault(dst, {})
                        for entry in entries:
                            bucket.setdefault(
                                model.canonical_text(entry), entry
                            )
                    else:
                        _join_pending_single(
                            pending, dst, entries[0], preds
                        )
    finally:
        if pool is not None:
            pool.shutdown()
        _SHARD_CTX = None

    alarm_list = _alarm_list(alarms)
    seconds = time.perf_counter() - started
    stage_list = plan.stages()
    report = CertificationReport(
        subject=tvp.name,
        engine=f"tvla-{mode}",
        alarms=alarm_list,
        stats={
            "iterations": iterations,
            "max_structures": max_structures,
            "abstraction_preds": len(preds),
            "shards": len(plan.sccs),
            "shards_solved": solved,
            "stages": len(stage_list),
            "parallel_shards": plan.width,
            "workers": workers,
            "seconds": round(seconds, 4),
        },
    )
    return ShardedResult(
        report=report,
        shards=len(plan.sccs),
        stages=len(stage_list),
        parallel_shards=plan.width,
        workers=workers,
        seconds=seconds,
        pids=sorted(pids),
    )


def _merge_alarm_rows(alarms, rows) -> None:
    from repro.tvla.engine import _CheckContribution

    for key, line, op_key, instance, alarmed, all_fail in rows:
        key = tuple(key)
        existing = alarms.get(key)
        if existing is None:
            alarms[key] = _CheckContribution(
                line=line,
                op_key=op_key,
                instance=instance,
                alarmed=alarmed,
                all_fail=all_fail,
            )
        else:
            existing.merge(alarmed, all_fail)


def _join_pending_single(pending, dst, entry, preds) -> None:
    """Independent mode: join one boundary structure into the pending
    entry state for ``dst`` (dict representation; re-serialized on the
    way to the consuming shard)."""
    from repro.cert import model

    incoming = model.structure_from_json(entry).canonicalize(preds)
    bucket = pending.get(dst)
    if not bucket:
        pending[dst] = {
            model.canonical_text(
                model.structure_to_json(incoming, preds)
            ): model.structure_to_json(incoming, preds)
        }
        return
    (_, existing_json), = list(bucket.items())
    existing = model.structure_from_json(existing_json).canonicalize(preds)
    merged = type(existing).join(existing, incoming, preds).canonicalize(
        preds
    )
    merged_json = model.structure_to_json(merged, preds)
    pending[dst] = {model.canonical_text(merged_json): merged_json}


def _mp_context():
    # fork shares the parent's warm engine (compiled formulas, transfer
    # memo, derived abstraction) with every worker for free
    methods = multiprocessing.get_all_start_methods()
    if "fork" in methods:
        return multiprocessing.get_context("fork")
    return multiprocessing.get_context()
