"""Per-phase observability: trace events and the :class:`Tracer` protocol.

The certification pipeline is staged — parse, derive, inline, transform,
fixpoint — and the paper's evaluation (Section 7) is all about how the
*time* of each stage trades against precision.  This module gives every
stage a uniform way to report itself without coupling the analysis code
to any particular consumer:

* an instrumented region wraps itself in :func:`phase`, which times the
  block and emits a :class:`TraceEvent` to the *active tracer*;
* the active tracer is ambient (a :class:`contextvars.ContextVar`), so
  deep call stacks need no plumbing and the default is a no-op —
  un-traced certification pays one context-variable read per phase;
* consumers install a tracer with :func:`use_tracer`:
  :class:`CollectingTracer` buffers events in memory (the batch runtime
  ships them across the process boundary), :class:`JsonlTracer` streams
  them to a file.

Events survive exceptions: a phase interrupted by a timeout or a budget
blow-up still emits, with the partial duration and an ``error`` note in
its metadata — exactly the observations one needs to tune budgets.
"""

from __future__ import annotations

import contextlib
import contextvars
import json
import time
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, TextIO

#: the canonical pipeline phases, in pipeline order (engines may emit a
#: phase more than once, e.g. a fallback re-run).  ``emit`` and ``check``
#: bracket certificate emission and independent certificate checking.
PHASES = ("parse", "derive", "inline", "transform", "fixpoint", "emit", "check")

#: point events emitted by the resource governor / degradation ladder
#: (see :mod:`repro.runtime.guard`): a budget breach, a ladder descent,
#: a salvage merge, and the batch runtime's SIGALRM-unavailable warning.
GOVERNOR_EVENTS = ("breach", "degrade", "salvage", "warning")


@dataclass
class TraceEvent:
    """One timed region of the pipeline."""

    phase: str
    seconds: float
    meta: Dict[str, object] = field(default_factory=dict)
    #: batch-job name; attached by the batch runtime, ``None`` elsewhere
    job: Optional[str] = None
    #: wall-clock start (``time.time()``)
    ts: float = 0.0

    def to_json(self) -> Dict[str, object]:
        record: Dict[str, object] = {
            "phase": self.phase,
            "seconds": round(self.seconds, 6),
            "ts": round(self.ts, 6),
            "meta": self.meta,
        }
        if self.job is not None:
            record["job"] = self.job
        return record


class Tracer:
    """Protocol: anything with an ``emit(event)`` method.

    The base class doubles as the no-op implementation so that
    instrumented code can call ``current_tracer().emit(...)``
    unconditionally.
    """

    def emit(self, event: TraceEvent) -> None:  # pragma: no cover - no-op
        pass


#: the shared no-op tracer (also the sentinel for "tracing disabled")
NULL_TRACER = Tracer()


class CollectingTracer(Tracer):
    """Buffers events in memory; picklable, so workers can return it."""

    def __init__(self) -> None:
        self.events: List[TraceEvent] = []

    def emit(self, event: TraceEvent) -> None:
        self.events.append(event)

    def totals(self) -> Dict[str, float]:
        """Summed seconds per phase."""
        sums: Dict[str, float] = {}
        for event in self.events:
            sums[event.phase] = sums.get(event.phase, 0.0) + event.seconds
        return sums


class JsonlTracer(Tracer):
    """Streams events to an open text handle, one JSON object per line."""

    def __init__(self, handle: TextIO) -> None:
        self.handle = handle

    def emit(self, event: TraceEvent) -> None:
        self.handle.write(json.dumps(event.to_json(), sort_keys=True) + "\n")


_ACTIVE: contextvars.ContextVar[Tracer] = contextvars.ContextVar(
    "repro_active_tracer", default=NULL_TRACER
)


def current_tracer() -> Tracer:
    return _ACTIVE.get()


@contextlib.contextmanager
def use_tracer(tracer: Optional[Tracer]) -> Iterator[Tracer]:
    """Install ``tracer`` as the ambient tracer for the block."""
    tracer = tracer if tracer is not None else NULL_TRACER
    token = _ACTIVE.set(tracer)
    try:
        yield tracer
    finally:
        _ACTIVE.reset(token)


@contextlib.contextmanager
def phase(name: str, **meta: object) -> Iterator[Dict[str, object]]:
    """Time a pipeline phase and emit it to the active tracer.

    Yields the event's metadata dict so the block can attach results
    (iteration counts, structure counts, cache disposition)::

        with phase("fixpoint", engine="fds") as meta:
            result = solver.solve(program)
            meta["iterations"] = result.iterations

    The event is emitted even if the block raises — with the partial
    duration and the exception class recorded under ``meta["error"]`` —
    so timeouts and budget blow-ups remain observable.
    """
    tracer = _ACTIVE.get()
    if tracer is NULL_TRACER:
        yield meta
        return
    record: Dict[str, object] = dict(meta)
    started_wall = time.time()
    started = time.perf_counter()
    try:
        yield record
    except BaseException as error:
        record.setdefault("error", type(error).__name__)
        raise
    finally:
        tracer.emit(
            TraceEvent(
                phase=name,
                seconds=time.perf_counter() - started,
                meta=record,
                ts=started_wall,
            )
        )


def note(name: str, **meta: object) -> None:
    """Emit a zero-duration point event to the active tracer.

    Used for the governor's :data:`GOVERNOR_EVENTS` — a breach, a ladder
    descent, a salvage merge — which mark an instant, not a region.
    """
    tracer = _ACTIVE.get()
    if tracer is NULL_TRACER:
        return
    tracer.emit(
        TraceEvent(phase=name, seconds=0.0, meta=dict(meta), ts=time.time())
    )


def write_events(
    path: str, events: List[TraceEvent], append: bool = False
) -> None:
    """Write events as JSONL (the batch runtime's trace format)."""
    with open(path, "a" if append else "w") as handle:
        tracer = JsonlTracer(handle)
        for event in events:
            tracer.emit(event)


def validate_trace_record(record: object) -> List[str]:
    """Schema-check one decoded JSONL trace record; returns problems."""
    problems: List[str] = []
    if not isinstance(record, dict):
        return [f"record is {type(record).__name__}, expected object"]
    phase_name = record.get("phase")
    if not isinstance(phase_name, str) or not phase_name:
        problems.append("missing/non-string 'phase'")
    seconds = record.get("seconds")
    if not isinstance(seconds, (int, float)) or seconds < 0:
        problems.append("missing/negative 'seconds'")
    ts = record.get("ts")
    if not isinstance(ts, (int, float)):
        problems.append("missing 'ts'")
    if "meta" in record and not isinstance(record["meta"], dict):
        problems.append("'meta' is not an object")
    if "job" in record and not isinstance(record["job"], str):
        problems.append("'job' is not a string")
    return problems
