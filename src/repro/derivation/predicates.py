"""Data model of derived abstractions.

An abstraction consists of:

* **Predicate families** (Section 4.1, "Predicate Families"): a family is
  a formula over typed free variables, e.g. ``stale(i) ≡ i.defVer !=
  i.set.ver`` with ``i : Iterator``.  For a given client, each family is
  instantiated once per tuple of client variables (or, in the first-order
  setting of Section 5, per tuple of client *fields*).
* **Operation abstractions** (Section 4.2): for every component operation
  and every *coincidence pattern* — which family positions name the
  operation's own operands — an update formula of the special form
  ``p0 := p1 ∨ … ∨ pk`` (possibly with the constants 0/1), plus the
  operation's ``requires`` checks expressed as family instances.

Coincidence patterns are how the repo represents Fig. 5's side conditions
such as ``∀k ∈ I − {i}``: the update for ``mutx`` after ``i = v.iterator()``
has one case for the pattern where both arguments are the result operand
(``mutx_{i,i} := 0``) and another for the pattern where only the first is
(``mutx_{i,k} := iterof_{k,v}``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.easl.spec import ComponentSpec, Operation
from repro.logic.formula import Formula
from repro.logic.terms import Base


@dataclass(frozen=True)
class Family:
    """An instrumentation predicate family."""

    name: str
    vars: Tuple[Base, ...]  # canonical typed free variables
    formula: Formula  # defining formula over the vars' access paths

    @property
    def arity(self) -> int:
        return len(self.vars)

    @property
    def sorts(self) -> Tuple[str, ...]:
        return tuple(v.sort or "?" for v in self.vars)

    def describe(self) -> str:
        args = ", ".join(f"{v.name}:{v.sort}" for v in self.vars)
        return f"{self.name}({args}) := {self.formula}"

    def __str__(self) -> str:
        return self.describe()


@dataclass(frozen=True)
class OpArg:
    """A family argument bound to one of the operation's operands."""

    name: str  # operand placeholder name ("this", "ret", a param, "dst"...)

    def __str__(self) -> str:
        return f"@{self.name}"


@dataclass(frozen=True)
class GenArg:
    """A family argument left generic: at client-instantiation time it
    ranges over client variables distinct (by name) from every operand."""

    slot: int

    def __str__(self) -> str:
        return f"z{self.slot}"


ArgRef = Union[OpArg, GenArg]


@dataclass(frozen=True)
class InstanceRef:
    """A reference to one family instance inside an update formula."""

    family: str
    args: Tuple[ArgRef, ...]

    def __str__(self) -> str:
        if not self.args:
            return self.family
        return f"{self.family}[{', '.join(map(str, self.args))}]"


@dataclass(frozen=True)
class UpdateCase:
    """``target := rhs_instances[0] ∨ … ∨ rhs_instances[k]`` (∨ 1 if
    ``rhs_true``).  An empty rhs with ``rhs_true=False`` is the constant 0.
    ``identity`` marks updates of the form ``p := p`` which clients may
    skip entirely (the Fig. 5 optimization)."""

    target: InstanceRef
    rhs_instances: Tuple[InstanceRef, ...]
    rhs_true: bool = False

    @property
    def identity(self) -> bool:
        return (
            not self.rhs_true
            and len(self.rhs_instances) == 1
            and self.rhs_instances[0] == self.target
        )

    @property
    def is_constant_false(self) -> bool:
        return not self.rhs_true and not self.rhs_instances

    def __str__(self) -> str:
        parts = [str(r) for r in self.rhs_instances]
        if self.rhs_true:
            parts.append("1")
        rhs = " | ".join(parts) if parts else "0"
        return f"{self.target} := {rhs}"


@dataclass
class OperationAbstraction:
    """The derived abstraction of a single component operation."""

    op: Operation
    #: family name -> { target argument pattern -> update case }
    updates: Dict[str, Dict[Tuple[ArgRef, ...], UpdateCase]] = field(
        default_factory=dict
    )
    #: violation witnesses: the operation's precondition fails iff some
    #: instance listed here is true (union semantics across the list)
    checks: List[InstanceRef] = field(default_factory=list)

    def case_for(
        self, family: str, pattern: Tuple[ArgRef, ...]
    ) -> Optional[UpdateCase]:
        return self.updates.get(family, {}).get(pattern)

    def add_case(self, case: UpdateCase) -> None:
        per_family = self.updates.setdefault(case.target.family, {})
        per_family[case.target.args] = case

    def all_cases(self) -> List[UpdateCase]:
        return [
            case
            for per_family in self.updates.values()
            for case in per_family.values()
        ]

    def __str__(self) -> str:
        lines = [f"operation {self.op}"]
        for check in self.checks:
            lines.append(f"  requires !{check}")
        for case in self.all_cases():
            if not case.identity:
                lines.append(f"  {case}")
        return "\n".join(lines)


@dataclass
class DerivedAbstraction:
    """The complete output of the derivation stage for one specification."""

    spec: ComponentSpec
    families: List[Family]
    operations: Dict[str, OperationAbstraction]  # keyed by Operation.key
    stats: "object" = None  # DerivationStats; typed loosely to avoid cycle

    def family(self, name: str) -> Family:
        for fam in self.families:
            if fam.name == name:
                return fam
        raise KeyError(name)

    def families_by_sorts(self) -> Dict[Tuple[str, ...], List[Family]]:
        result: Dict[Tuple[str, ...], List[Family]] = {}
        for fam in self.families:
            result.setdefault(fam.sorts, []).append(fam)
        return result

    def operation_abstraction(self, op: Operation) -> OperationAbstraction:
        return self.operations[op.key]

    def pretty_names(self) -> Dict[str, str]:
        """Human-readable aliases for CMP-shaped families, for display.

        Matches each family's defining formula against the four shapes of
        Fig. 4 (stale / iterof / mutx / same); unmatched families keep
        their generated names.
        """
        from repro.derivation.naming import propose_names

        return propose_names(self.families)

    def describe(self) -> str:
        names = self.pretty_names()
        lines = [f"abstraction for {self.spec.name}"]
        lines.append("families:")
        for fam in self.families:
            alias = names.get(fam.name)
            suffix = f"  (aka {alias})" if alias and alias != fam.name else ""
            lines.append(f"  {fam.describe()}{suffix}")
        for op_abs in self.operations.values():
            if op_abs.checks or any(
                not c.identity for c in op_abs.all_cases()
            ):
                lines.append(str(op_abs))
        return "\n".join(lines)


def instance_pattern(
    op: Operation,
    spec: ComponentSpec,
    binding: Dict[str, str],
    instance_args: Sequence[str],
) -> Tuple[Tuple[ArgRef, ...], Dict[int, str]]:
    """Classify a client-side family instance against an operation.

    ``binding`` maps operand placeholder names to client variable names;
    ``instance_args`` are the client variables of the family instance.
    Returns the coincidence pattern (to select the update case) and the
    generic-slot assignment (slot -> client variable).
    """
    operand_order = [
        operand.name
        for operand in op.component_operands(spec)
        if operand.name in binding
    ]
    pattern: List[ArgRef] = []
    slots: Dict[str, int] = {}
    slot_vars: Dict[int, str] = {}
    for client_var in instance_args:
        matched: Optional[ArgRef] = None
        for operand_name in operand_order:
            if binding[operand_name] == client_var:
                matched = OpArg(operand_name)
                break
        if matched is None:
            if client_var not in slots:
                slots[client_var] = len(slots)
                slot_vars[slots[client_var]] = client_var
            matched = GenArg(slots[client_var])
        pattern.append(matched)
    return tuple(pattern), slot_vars
