"""Stage 1 of the paper's pipeline: abstraction derivation (Sections 4, 6).

Given an Easl :class:`~repro.easl.spec.ComponentSpec`, the
:func:`~repro.derivation.derive.derive` fixpoint discovers the
*instrumentation predicate families* needed to track the component's
conformance constraints (Rule 1–3 of Section 4.1) and, for every component
operation, the *update formulae* over those families (Section 4.2).

The result, a :class:`~repro.derivation.predicates.DerivedAbstraction`,
is consumed by:

* :mod:`repro.certifier` — instantiated over the variables of an SCMP
  client to yield a boolean program (Fig. 6), then solved precisely in
  polynomial time;
* :mod:`repro.tvp.specialize` — instantiated over the *fields* of an
  unrestricted client to yield a first-order predicate abstraction
  (Section 5.3) analysed by the TVLA engine.
"""

from repro.derivation.derive import DerivationDiverged, DerivationStats, derive
from repro.derivation.predicates import (
    DerivedAbstraction,
    Family,
    GenArg,
    InstanceRef,
    OpArg,
    OperationAbstraction,
    UpdateCase,
)

__all__ = [
    "DerivationDiverged",
    "DerivationStats",
    "DerivedAbstraction",
    "Family",
    "GenArg",
    "InstanceRef",
    "OpArg",
    "OperationAbstraction",
    "UpdateCase",
    "derive",
]
