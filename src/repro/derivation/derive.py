"""The abstraction-derivation fixpoint (Section 4.1, Rules 1–3).

The procedure iteratively performs a symbolic backward weakest-precondition
computation over every component operation:

* **Rule 1** — for every ``requires φ`` clause, ``¬φ`` is a candidate
  instrumentation formula (these also become the operation's *checks*).
* **Rule 2** — a candidate formula is split into its DNF disjuncts, each a
  candidate instrumentation predicate.  Splitting is what later allows an
  efficient independent-attribute client analysis to match the precision
  of a relational one (Section 4.6); the ``split_disjuncts=False`` ablation
  shows the procedure diverging on CMP without it.
* **Rule 3** — for every candidate predicate ``φ`` and operation ``M``,
  ``WP(M, φ)`` is a candidate instrumentation formula.

Each weakest precondition is minimized under the operation's precondition
(the ``requires`` clauses hold on any execution that survives the call) by
the :mod:`repro.logic.decision` procedures, then each disjunct is matched
against the already-derived families up to variable renaming.  Unmatched
disjuncts found new families; matched ones become the operands of the
update formula ``p0 := p1 ∨ … ∨ pk`` (Section 4.2).

The expensive symbolic work here happens once per *specification*, not per
client — the staging argument of Section 1.3.
"""

from __future__ import annotations

import itertools
import time
from dataclasses import dataclass
from typing import Dict, Iterator, List, Optional, Sequence, Set, Tuple

from repro.derivation.predicates import (
    ArgRef,
    DerivedAbstraction,
    Family,
    GenArg,
    InstanceRef,
    OpArg,
    OperationAbstraction,
    UpdateCase,
)
from repro.easl.spec import ComponentSpec, Operation
from repro.easl.wp import operation_preconditions, wp_operation
from repro.logic.decision import equivalent, normalize_to_minimal_dnf
from repro.logic.formula import (
    FALSE,
    TRUE,
    EqAtom,
    Formula,
    disj,
    map_atoms,
    neg,
)
from repro.logic.normal import absorb, to_dnf
from repro.logic.terms import Base, Field, Term, root
from repro.runtime.trace import phase as trace_phase


@dataclass
class DerivationStats:
    """Bookkeeping reported by Table E5 of the evaluation."""

    spec_name: str = ""
    families: int = 0
    iterations: int = 0
    wp_calls: int = 0
    equivalence_checks: int = 0
    update_cases: int = 0
    identity_cases: int = 0
    check_instances: int = 0
    elapsed_seconds: float = 0.0
    decision: str = "semantic"
    minimized: bool = True
    split: bool = True


class DerivationDiverged(Exception):
    """The fixpoint exceeded the family budget (Section 4.5 notes that
    termination is not guaranteed in general)."""

    def __init__(self, message: str, partial: Optional[List[Family]] = None):
        super().__init__(message)
        self.partial = partial or []


# -- free-variable utilities ---------------------------------------------------


def free_bases(formula: Formula) -> List[Base]:
    """The :class:`Base` roots occurring in a formula, sorted canonically."""
    found: Set[Base] = set()

    def collect(atom: Formula) -> Formula:
        if isinstance(atom, EqAtom):
            for term in (atom.lhs, atom.rhs):
                base = root(term)
                if isinstance(base, Base) and base.name != "null":
                    found.add(base)
        return atom

    map_atoms(formula, collect)
    return sorted(found, key=lambda b: (b.sort or "", b.name))


def rename_bases(formula: Formula, mapping: Dict[Base, Base]) -> Formula:
    def sub(term: Term) -> Term:
        if isinstance(term, Field):
            return Field(sub(term.base), term.field)
        if isinstance(term, Base) and term in mapping:
            return mapping[term]
        return term

    from repro.logic.formula import eq as make_eq

    def rewrite(atom: Formula) -> Formula:
        if isinstance(atom, EqAtom):
            return make_eq(sub(atom.lhs), sub(atom.rhs))
        return atom

    return map_atoms(formula, rewrite)


def _canonical_dnf_key(formula: Formula) -> frozenset:
    """A syntactic canonical form: the set of sorted-literal disjuncts."""
    return frozenset(
        frozenset(str(lit) for lit in _literals(d)) for d in to_dnf(formula)
    )


def _literals(disjunct: Formula):
    from repro.logic.normal import conjunct_literals

    return conjunct_literals(disjunct)


# -- pattern enumeration --------------------------------------------------------


def _set_partitions(items: Sequence[int]) -> Iterator[List[List[int]]]:
    """All partitions of ``items`` into non-empty blocks."""
    if not items:
        yield []
        return
    first, rest = items[0], items[1:]
    for partition in _set_partitions(rest):
        yield [[first]] + [list(block) for block in partition]
        for index in range(len(partition)):
            updated = [list(block) for block in partition]
            updated[index] = [first] + updated[index]
            yield updated


def enumerate_patterns(
    family: Family, op: Operation, spec: ComponentSpec
) -> Iterator[Tuple[Tuple[ArgRef, ...], Dict[Base, ArgRef], Dict[int, Base]]]:
    """All coincidence patterns of ``family`` against ``op``.

    Yields ``(pattern, base_to_ref, slot_to_base)``: the pattern (one
    :class:`ArgRef` per family position), the instantiation of each family
    variable as a :class:`Base` constant, and the generic-slot bases.
    """
    operands = [
        operand
        for operand in op.component_operands(spec)
    ]
    positions = list(range(family.arity))
    sorts = family.sorts
    for partition in _set_partitions(positions):
        partition = sorted(partition, key=min)
        if any(
            len({sorts[p] for p in block}) > 1 for block in partition
        ):
            continue
        yield from _assign_blocks(
            family, partition, operands, sorts
        )


def _assign_blocks(family, partition, operands, sorts):
    def recurse(index: int, used: Set[str], assignment: List[Optional[str]]):
        if index == len(partition):
            yield _build_pattern(family, partition, assignment, sorts)
            return
        block_sort = sorts[partition[index][0]]
        # option: leave the block generic
        assignment.append(None)
        yield from recurse(index + 1, used, assignment)
        assignment.pop()
        # option: bind the block to an unused, type-compatible operand
        for operand in operands:
            if operand.name in used or operand.type != block_sort:
                continue
            assignment.append(operand.name)
            yield from recurse(index + 1, used | {operand.name}, assignment)
            assignment.pop()

    yield from recurse(0, set(), [])


def _build_pattern(family, partition, assignment, sorts):
    refs: List[Optional[ArgRef]] = [None] * family.arity
    bases: List[Optional[Base]] = [None] * family.arity
    slot_to_base: Dict[int, Base] = {}
    next_slot = 0
    # blocks already sorted by min position, so slots number left-to-right
    for block, operand_name in zip(partition, assignment):
        block_sort = sorts[block[0]]
        if operand_name is not None:
            ref: ArgRef = OpArg(operand_name)
            base = Base(operand_name, block_sort)
        else:
            ref = GenArg(next_slot)
            base = Base(f"z{next_slot}", block_sort)
            slot_to_base[next_slot] = base
            next_slot += 1
        for position in block:
            refs[position] = ref
            bases[position] = base
    base_to_ref: Dict[Base, ArgRef] = {}
    for ref, base in zip(refs, bases):
        assert ref is not None and base is not None
        base_to_ref[base] = ref
    pattern = tuple(refs)  # type: ignore[arg-type]
    instance_bases = {
        var: base for var, base in zip(family.vars, bases)
    }
    return pattern, instance_bases, base_to_ref, slot_to_base


# -- the derivation engine --------------------------------------------------------


class _Deriver:
    def __init__(
        self,
        spec: ComponentSpec,
        decision: str,
        minimize: bool,
        split: bool,
        max_families: int,
    ) -> None:
        self.spec = spec
        self.decision = decision
        self.minimize = minimize
        self.split = split
        self.max_families = max_families
        self.families: List[Family] = []
        self.queue: List[Family] = []
        self.stats = DerivationStats(
            spec_name=spec.name,
            decision=decision,
            minimized=minimize,
            split=split,
        )
        self.operations: Dict[str, OperationAbstraction] = {
            op.key: OperationAbstraction(op) for op in spec.operations()
        }
        self._ops = spec.operations()

    # -- family management ---------------------------------------------------

    def _equivalent(self, lhs: Formula, rhs: Formula) -> bool:
        self.stats.equivalence_checks += 1
        if self.decision == "syntactic":
            return _canonical_dnf_key(lhs) == _canonical_dnf_key(rhs)
        return equivalent(lhs, rhs)

    def match(self, disjunct: Formula) -> Optional[Tuple[Family, Tuple[Base, ...]]]:
        bases = free_bases(disjunct)
        base_set = set(bases)
        for family in self.families:
            if family.arity < len(base_set):
                continue
            for args in itertools.product(bases, repeat=family.arity):
                if set(args) != base_set:
                    continue
                if tuple(a.sort for a in args) != family.sorts:
                    continue
                renamed = rename_bases(
                    family.formula, dict(zip(family.vars, args))
                )
                if self._equivalent(disjunct, renamed):
                    return family, args
        return None

    def match_or_create(
        self, disjunct: Formula
    ) -> Tuple[Family, Tuple[Base, ...]]:
        matched = self.match(disjunct)
        if matched is not None:
            return matched
        bases = tuple(free_bases(disjunct))
        canonical_vars = tuple(
            Base(f"x{i}", b.sort) for i, b in enumerate(bases)
        )
        formula = rename_bases(disjunct, dict(zip(bases, canonical_vars)))
        family = Family(f"P{len(self.families)}", canonical_vars, formula)
        if len(self.families) >= self.max_families:
            raise DerivationDiverged(
                f"derivation for {self.spec.name} exceeded "
                f"{self.max_families} families (Section 4.5: termination "
                f"is not guaranteed in general)",
                partial=list(self.families),
            )
        self.families.append(family)
        self.queue.append(family)
        return family, bases

    # -- Rule 1 seeding --------------------------------------------------------

    def seed(self) -> None:
        for op in self._ops:
            op_abs = self.operations[op.key]
            for precondition in operation_preconditions(self.spec, op):
                violation = neg(precondition)
                disjuncts = self._candidate_disjuncts(violation, TRUE)
                for disjunct in disjuncts:
                    if disjunct is TRUE or disjunct is FALSE:
                        continue
                    family, args = self.match_or_create(disjunct)
                    refs = tuple(OpArg(base.name) for base in args)
                    instance = InstanceRef(family.name, refs)
                    if instance not in op_abs.checks:
                        op_abs.checks.append(instance)
                        self.stats.check_instances += 1

    def _candidate_disjuncts(
        self, formula: Formula, assumption: Formula
    ) -> List[Formula]:
        if self.minimize:
            disjuncts = normalize_to_minimal_dnf(formula, assumption)
        else:
            disjuncts = absorb(to_dnf(formula))
        if not self.split and len(disjuncts) > 1:
            return [disj(*disjuncts)]
        return disjuncts

    # -- Rule 3 closure ----------------------------------------------------------

    def close(self) -> None:
        while self.queue:
            family = self.queue.pop(0)
            self.stats.iterations += 1
            for op in self._ops:
                self._process(family, op)

    def _process(self, family: Family, op: Operation) -> None:
        op_abs = self.operations[op.key]
        for pattern, instance_bases, base_to_ref, slot_to_base in (
            enumerate_patterns(family, op, self.spec)
        ):
            target_formula = rename_bases(family.formula, instance_bases)
            result = wp_operation(self.spec, op, target_formula)
            self.stats.wp_calls += 1
            assumption = result.assumption if self.minimize else TRUE
            disjuncts = self._candidate_disjuncts(result.wp, assumption)
            rhs_refs: List[InstanceRef] = []
            rhs_true = False
            for disjunct in disjuncts:
                if disjunct is TRUE:
                    rhs_true = True
                    continue
                matched_family, args = self.match_or_create(disjunct)
                refs = tuple(
                    self._base_ref(base, base_to_ref) for base in args
                )
                ref = InstanceRef(matched_family.name, refs)
                if ref not in rhs_refs:
                    rhs_refs.append(ref)
            case = UpdateCase(
                InstanceRef(family.name, pattern), tuple(rhs_refs), rhs_true
            )
            op_abs.add_case(case)
            self.stats.update_cases += 1
            if case.identity:
                self.stats.identity_cases += 1

    def _base_ref(self, base: Base, base_to_ref: Dict[Base, ArgRef]) -> ArgRef:
        if base in base_to_ref:
            return base_to_ref[base]
        # A base not bound by the target pattern must be an operand
        # placeholder introduced by the WP (e.g. `this` in Fig. 5's
        # stale_k := stale_k ∨ iterof_{k,v}).
        return OpArg(base.name)


def derive(
    spec: ComponentSpec,
    *,
    decision: str = "semantic",
    minimize: bool = True,
    split_disjuncts: bool = True,
    max_families: int = 64,
    identity_families: bool = False,
) -> DerivedAbstraction:
    """Derive the specialized abstraction of a component specification.

    Parameters
    ----------
    spec:
        The parsed Easl specification.
    decision:
        ``"semantic"`` uses the EUF decision procedure for predicate
        equivalence; ``"syntactic"`` uses canonical-DNF comparison (the
        paper's "simple conservative equality checks", Section 4.5).
    minimize:
        Minimize each weakest precondition under the operation's
        ``requires`` assumptions before splitting.
    split_disjuncts:
        Rule 2.  Disabling it tracks whole candidate formulas as single
        predicates — the A1 ablation (derivation typically diverges).
    max_families:
        Budget after which :class:`DerivationDiverged` is raised.
    identity_families:
        Additionally seed an identity predicate ``x == y`` for every
        component type.  The intraprocedural certifier never needs these,
        but the Section 8 interprocedural certifier uses them to relate
        post-call values of reassignable variables to their entry values;
        the closure rules then derive their updates like any other family.
    """
    if decision not in ("semantic", "syntactic"):
        raise ValueError(f"unknown decision procedure {decision!r}")
    with trace_phase(
        "derive", spec=spec.name, identity_families=identity_families
    ) as trace_meta:
        started = time.perf_counter()
        deriver = _Deriver(
            spec, decision, minimize, split_disjuncts, max_families
        )
        deriver.seed()
        if identity_families:
            from repro.logic.formula import eq as make_eq

            for class_name in spec.classes:
                lhs = Base("x0", class_name)
                rhs = Base("x1", class_name)
                deriver.match_or_create(make_eq(lhs, rhs))
        deriver.close()
        deriver.stats.families = len(deriver.families)
        deriver.stats.elapsed_seconds = time.perf_counter() - started
        trace_meta.update(
            families=deriver.stats.families,
            iterations=deriver.stats.iterations,
            wp_calls=deriver.stats.wp_calls,
            equivalence_checks=deriver.stats.equivalence_checks,
        )
    return DerivedAbstraction(
        spec, deriver.families, deriver.operations, deriver.stats
    )
