"""Human-readable names for derived predicate families.

Derivation names families ``P0, P1, …`` in discovery order.  For display
and for paper-fidelity tests, this module recognizes the structural shapes
of the paper's Fig. 4 predicates and proposes the corresponding names:

* ``stale(i)   ≡ i.f != i.g.h``      (a one-variable path disequality)
* ``iterof(i,v) ≡ i.f == v``          (field of one var aliases another var)
* ``mutx(i,j)  ≡ i.f == j.f && i != j``
* ``same(v,w)  ≡ v == w``

Families outside these shapes keep their generated names; the proposal
never affects analysis results, only presentation.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.derivation.predicates import Family
from repro.logic.formula import And, EqAtom, Not
from repro.logic.terms import Base, Field


def _shape_name(family: Family) -> Optional[str]:
    formula = family.formula
    if family.arity == 1:
        if isinstance(formula, Not) and isinstance(formula.body, EqAtom):
            atom = formula.body
            if _is_var_field(atom.lhs) and _is_var_field_field(atom.rhs):
                return "stale"
            if _is_var_field(atom.rhs) and _is_var_field_field(atom.lhs):
                return "stale"
        return None
    if family.arity == 2:
        if isinstance(formula, EqAtom):
            if isinstance(formula.lhs, Base) and isinstance(
                formula.rhs, Base
            ):
                return "same"
            if (
                _is_var_field(formula.lhs)
                and isinstance(formula.rhs, Base)
            ) or (
                _is_var_field(formula.rhs)
                and isinstance(formula.lhs, Base)
            ):
                return "iterof"
            if _is_var_field(formula.lhs) and _is_var_field(formula.rhs):
                return "samefield"
        if isinstance(formula, And) and len(formula.args) == 2:
            atoms = list(formula.args)
            eq_atoms = [a for a in atoms if isinstance(a, EqAtom)]
            neq_atoms = [
                a
                for a in atoms
                if isinstance(a, Not) and isinstance(a.body, EqAtom)
            ]
            if len(eq_atoms) == 1 and len(neq_atoms) == 1:
                eq_atom = eq_atoms[0]
                neq_atom = neq_atoms[0].body  # type: ignore[union-attr]
                if (
                    _is_var_field(eq_atom.lhs)
                    and _is_var_field(eq_atom.rhs)
                    and isinstance(neq_atom.lhs, Base)
                    and isinstance(neq_atom.rhs, Base)
                ):
                    return "mutx"
    return None


def _is_var_field(term) -> bool:
    return isinstance(term, Field) and isinstance(term.base, Base)


def _is_var_field_field(term) -> bool:
    return (
        isinstance(term, Field)
        and isinstance(term.base, Field)
        and isinstance(term.base.base, Base)
    )


def propose_names(families: List[Family]) -> Dict[str, str]:
    """Map generated family names to proposed display names (unique)."""
    proposed: Dict[str, str] = {}
    used: Dict[str, int] = {}
    for family in families:
        name = _shape_name(family)
        if name is None:
            proposed[family.name] = family.name
            continue
        count = used.get(name, 0)
        used[name] = count + 1
        proposed[family.name] = name if count == 0 else f"{name}{count + 1}"
    return proposed
