"""Section 6 — mutation-restricted specifications and termination.

For mutation-restricted specifications the derivation procedure provably
terminates with a finite, precise abstraction.  The supplied paper text
truncates mid-definition; the reconstruction used throughout this repo is
(see :meth:`repro.easl.spec.ComponentSpec.is_mutation_restricted`):

1. every precondition is an alias condition ``requires (α == β)``;
2. the type graph is acyclic, so ``||TG||`` — the number of distinct
   paths in the type graph — is finite;
3. every assignment to a *mutable* field outside a constructor allocates
   a fresh object.

Under (2) every access path a weakest precondition can mention has shape
bounded by the type graph, and under (1)+(3) every candidate predicate is
a conjunction of (dis)equalities between such paths over the candidate's
free variables.  With at most ``max_arity`` free variables per family,
the number of distinct atoms — hence of candidate predicates up to
equivalence — is finite, giving the termination bound certified by
:func:`termination_certificate` and checked by the Section 6 tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.easl.spec import ComponentSpec


@dataclass
class TerminationCertificate:
    """Evidence that derivation must terminate for a specification."""

    spec_name: str
    mutation_restricted: bool
    alias_based: bool
    acyclic_type_graph: bool
    fresh_mutations: bool
    type_graph_paths: Optional[int]  # ||TG||; None when cyclic
    max_arity: int
    atom_bound: Optional[int]
    family_bound: Optional[int]

    @property
    def guarantees_termination(self) -> bool:
        return self.mutation_restricted and self.family_bound is not None


def access_path_count(spec: ComponentSpec, per_sort: bool = False):
    """Paths in the type graph starting from each component sort.

    A free variable of sort ``C`` can root any access path following the
    type graph from ``C``; acyclicity makes the count finite.
    """
    graph = spec.type_graph()
    if not spec.type_graph_acyclic():
        return None
    memo: Dict[str, int] = {}

    def count(node: str) -> int:
        if node not in memo:
            memo[node] = 1 + sum(
                count(successor) for _f, successor in graph[node]
            )
        return memo[node]

    counts = {name: count(name) for name in graph}
    return counts if per_sort else sum(counts.values())


def termination_certificate(
    spec: ComponentSpec, max_arity: int = 2
) -> TerminationCertificate:
    """Compute the Section 6 termination bound for a specification.

    ``max_arity`` bounds the number of free variables per family (the
    derivation never needs more than the largest operand count of an
    operation plus one, which is 2 for every shipped specification).
    """
    alias_based = spec.is_alias_based()
    acyclic = spec.type_graph_acyclic()
    fresh = spec.mutable_field_assignments_are_fresh()
    paths = spec.type_graph_path_count()
    per_sort = access_path_count(spec, per_sort=True)
    atom_bound: Optional[int] = None
    family_bound: Optional[int] = None
    if acyclic and per_sort is not None:
        # paths rooted at any of `max_arity` typed variables; atoms are
        # unordered pairs of such paths (equalities); each candidate
        # family is a set of literals over those atoms
        max_paths_per_var = max(per_sort.values(), default=0)
        path_slots = max_arity * max_paths_per_var
        atom_bound = path_slots * (path_slots + 1) // 2
        family_bound = 3 ** atom_bound  # each atom: absent / pos / neg
    return TerminationCertificate(
        spec_name=spec.name,
        mutation_restricted=alias_based and acyclic and fresh,
        alias_based=alias_based,
        acyclic_type_graph=acyclic,
        fresh_mutations=fresh,
        type_graph_paths=paths,
        max_arity=max_arity,
        atom_bound=atom_bound,
        family_bound=family_bound,
    )


def classify_library() -> List[Tuple[str, TerminationCertificate]]:
    """Certificates for every shipped specification (the E5 table)."""
    from repro.easl.library import ALL_SPECS

    return [
        (name, termination_certificate(factory()))
        for name, factory in ALL_SPECS.items()
    ]
