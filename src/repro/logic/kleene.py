"""Kleene's 3-valued truth domain.

TVLA (Section 5.5 of the paper) evaluates formulae over 3-valued logical
structures, where the third value ``1/2`` denotes "may be 0 or 1".  The
*information order* places ``0`` and ``1`` below ``1/2`` (``1/2`` conveys
less information); the join used when merging individuals during canonical
abstraction is the information-order join.

Values are represented as an :class:`enum.Enum` with the usual logical
operations defined so that they restrict to ordinary boolean logic on
definite values.
"""

from __future__ import annotations

import enum
from typing import Iterable


class Kleene(enum.Enum):
    """A 3-valued truth value."""

    FALSE = 0
    TRUE = 1
    HALF = 2  # the indefinite value 1/2

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return {Kleene.FALSE: "0", Kleene.TRUE: "1", Kleene.HALF: "1/2"}[self]

    __str__ = __repr__

    @property
    def is_definite(self) -> bool:
        return self is not Kleene.HALF

    @property
    def may_be_true(self) -> bool:
        return self is not Kleene.FALSE

    @property
    def may_be_false(self) -> bool:
        return self is not Kleene.TRUE

    def logical_and(self, other: "Kleene") -> "Kleene":
        if self is Kleene.FALSE or other is Kleene.FALSE:
            return Kleene.FALSE
        if self is Kleene.TRUE and other is Kleene.TRUE:
            return Kleene.TRUE
        return Kleene.HALF

    def logical_or(self, other: "Kleene") -> "Kleene":
        if self is Kleene.TRUE or other is Kleene.TRUE:
            return Kleene.TRUE
        if self is Kleene.FALSE and other is Kleene.FALSE:
            return Kleene.FALSE
        return Kleene.HALF

    def logical_not(self) -> "Kleene":
        if self is Kleene.TRUE:
            return Kleene.FALSE
        if self is Kleene.FALSE:
            return Kleene.TRUE
        return Kleene.HALF

    def join(self, other: "Kleene") -> "Kleene":
        """Information-order join: ``0 ⊔ 1 = 1/2``."""
        if self is other:
            return self
        return Kleene.HALF

    def leq_info(self, other: "Kleene") -> bool:
        """Information order: definite values are below ``1/2``."""
        return self is other or other is Kleene.HALF

    @staticmethod
    def from_bool(value: bool) -> "Kleene":
        return Kleene.TRUE if value else Kleene.FALSE


TRUE3 = Kleene.TRUE
FALSE3 = Kleene.FALSE
HALF = Kleene.HALF


def kleene_and(values: Iterable[Kleene]) -> Kleene:
    """3-valued conjunction of an iterable (empty conjunction is TRUE)."""
    result = Kleene.TRUE
    for value in values:
        result = result.logical_and(value)
        if result is Kleene.FALSE:
            return result
    return result


def kleene_or(values: Iterable[Kleene]) -> Kleene:
    """3-valued disjunction of an iterable (empty disjunction is FALSE)."""
    result = Kleene.FALSE
    for value in values:
        result = result.logical_or(value)
        if result is Kleene.TRUE:
            return result
    return result


def kleene_join(values: Iterable[Kleene]) -> Kleene:
    """Information-order join of an iterable.

    The join of an empty iterable is undefined and raises ``ValueError``;
    callers join at least one value (the value of a predicate on at least
    one merged individual).
    """
    iterator = iter(values)
    try:
        result = next(iterator)
    except StopIteration:
        raise ValueError("join of empty iterable") from None
    for value in iterator:
        result = result.join(value)
        if result is Kleene.HALF:
            return result
    return result
