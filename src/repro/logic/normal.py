"""Normal forms and the Rule 2 disjunct splitting of Section 4.1.

The derivation procedure turns each weakest precondition into disjunctive
normal form and then treats each disjunct as a *candidate instrumentation
predicate* (Rule 2).  Splitting disjuncts — rather than tracking the whole
disjunction as one predicate — is what lets the certifier use an efficient
independent-attribute analysis without losing relational precision: the
disjuncts are tracked separately and recombined by the update formulae
``p0 := p1 ∨ … ∨ pk``.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.logic.formula import (
    FALSE,
    TRUE,
    And,
    EqAtom,
    Formula,
    Not,
    Or,
    PredAtom,
    Truth,
    conj,
    disj,
    neg,
)


def to_nnf(formula: Formula) -> Formula:
    """Negation normal form: negations pushed to the literals."""
    if isinstance(formula, (Truth, EqAtom, PredAtom)):
        return formula
    if isinstance(formula, And):
        return conj(*(to_nnf(a) for a in formula.args))
    if isinstance(formula, Or):
        return disj(*(to_nnf(a) for a in formula.args))
    if isinstance(formula, Not):
        body = formula.body
        if isinstance(body, (Truth, EqAtom, PredAtom)):
            return neg(body)
        if isinstance(body, Not):
            return to_nnf(body.body)
        if isinstance(body, And):
            return disj(*(to_nnf(neg(a)) for a in body.args))
        if isinstance(body, Or):
            return conj(*(to_nnf(neg(a)) for a in body.args))
    raise TypeError(f"cannot normalize quantified formula: {formula!r}")


def to_dnf(formula: Formula) -> List[Formula]:
    """Disjunctive normal form as a list of conjunctions of literals.

    The empty list denotes FALSE; a list containing ``TRUE`` denotes a
    formula with a trivially-true disjunct.  Contradictory disjuncts
    (containing both a literal and its negation) are dropped by the smart
    constructors.
    """
    nnf = to_nnf(formula)
    clauses = _dnf_clauses(nnf)
    disjuncts: List[Formula] = []
    seen = set()
    for clause in clauses:
        disjunct = conj(*clause)
        if disjunct is FALSE:
            continue
        if disjunct not in seen:
            seen.add(disjunct)
            disjuncts.append(disjunct)
    if any(d is TRUE for d in disjuncts):
        return [TRUE]
    return disjuncts


def _dnf_clauses(formula: Formula) -> List[Tuple[Formula, ...]]:
    if isinstance(formula, Truth):
        return [()] if formula.value else []
    if isinstance(formula, (EqAtom, PredAtom, Not)):
        return [(formula,)]
    if isinstance(formula, Or):
        clauses: List[Tuple[Formula, ...]] = []
        for arg in formula.args:
            clauses.extend(_dnf_clauses(arg))
        return clauses
    if isinstance(formula, And):
        clauses = [()]
        for arg in formula.args:
            arg_clauses = _dnf_clauses(arg)
            clauses = [c + a for c in clauses for a in arg_clauses]
        return clauses
    raise TypeError(f"cannot normalize quantified formula: {formula!r}")


def split_disjuncts(formula: Formula) -> List[Formula]:
    """Rule 2 of Section 4.1: split a candidate instrumentation *formula*
    into candidate instrumentation *predicates*, one per DNF disjunct.

    Conjunctions are kept whole (tracking their conjuncts independently
    would lose precision in an independent-attribute analysis); only
    top-level disjunctive structure is split.
    """
    return to_dnf(formula)


def conjunct_literals(disjunct: Formula) -> List[Formula]:
    """The literals of one DNF disjunct."""
    if isinstance(disjunct, And):
        return list(disjunct.args)
    if disjunct is TRUE:
        return []
    return [disjunct]


def absorb(disjuncts: List[Formula]) -> List[Formula]:
    """Remove disjuncts syntactically absorbed by another disjunct.

    ``D`` absorbs ``D'`` when the literal set of ``D`` is a subset of the
    literal set of ``D'`` (so ``D' → D``).
    """
    literal_sets = [frozenset(conjunct_literals(d)) for d in disjuncts]
    kept: List[Formula] = []
    for index, disjunct in enumerate(disjuncts):
        mine = literal_sets[index]
        absorbed = False
        for other_index, other in enumerate(literal_sets):
            if other_index == index:
                continue
            if other < mine or (other == mine and other_index < index):
                absorbed = True
                break
        if not absorbed:
            kept.append(disjunct)
    return kept
