"""Formula AST with smart constructors.

Two atom flavours share the same connective layer:

* :class:`EqAtom` — equality of two access-path :mod:`~repro.logic.terms`.
  These are the atoms of the derivation stage (Section 4.1): candidate
  instrumentation predicates such as ``i.set == v`` are boolean
  combinations of ``EqAtom`` literals.
* :class:`PredAtom` — application of a named first-order predicate to
  logical variables, the atoms of TVP formulae (Section 5.1).

The smart constructors :func:`conj`, :func:`disj`, :func:`neg` flatten
nested connectives, fold constants, and deduplicate operands, which keeps
the weakest-precondition computation from blowing up syntactically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterator, Tuple

from repro.logic.terms import Base, Term


class Formula:
    """Base class for all formula nodes."""

    def __and__(self, other: "Formula") -> "Formula":
        return conj(self, other)

    def __or__(self, other: "Formula") -> "Formula":
        return disj(self, other)

    def __invert__(self) -> "Formula":
        return neg(self)


@dataclass(frozen=True)
class Truth(Formula):
    """A propositional constant."""

    value: bool

    def __str__(self) -> str:
        return "true" if self.value else "false"


TRUE = Truth(True)
FALSE = Truth(False)


@dataclass(frozen=True)
class EqAtom(Formula):
    """Equality between two access-path terms.

    Constructed via :func:`eq`, which orders the operands canonically so
    that syntactically-identical atoms compare equal.
    """

    lhs: Term
    rhs: Term

    def __str__(self) -> str:
        return f"{self.lhs} == {self.rhs}"


@dataclass(frozen=True)
class PredAtom(Formula):
    """Application ``name(args)`` of a first-order predicate.

    ``args`` are logical-variable names (strings).  Nullary predicates
    (the boolean variables of the SCMP abstraction) have ``args == ()``.
    """

    name: str
    args: Tuple[str, ...] = ()

    def __str__(self) -> str:
        if not self.args:
            return self.name
        return f"{self.name}({', '.join(self.args)})"


@dataclass(frozen=True)
class Not(Formula):
    body: Formula

    def __str__(self) -> str:
        return f"!({self.body})"


@dataclass(frozen=True)
class And(Formula):
    args: Tuple[Formula, ...]

    def __str__(self) -> str:
        return "(" + " && ".join(str(a) for a in self.args) + ")"


@dataclass(frozen=True)
class Or(Formula):
    args: Tuple[Formula, ...]

    def __str__(self) -> str:
        return "(" + " || ".join(str(a) for a in self.args) + ")"


@dataclass(frozen=True)
class Exists(Formula):
    var: str
    body: Formula

    def __str__(self) -> str:
        return f"(exists {self.var}: {self.body})"


@dataclass(frozen=True)
class Forall(Formula):
    var: str
    body: Formula

    def __str__(self) -> str:
        return f"(forall {self.var}: {self.body})"


# ---------------------------------------------------------------------------
# Smart constructors
# ---------------------------------------------------------------------------


def _term_key(term: Term) -> str:
    return str(term)


def eq(lhs: Term, rhs: Term) -> Formula:
    """Equality atom with canonical operand order; folds ``t == t``."""
    if lhs == rhs:
        return TRUE
    if _term_key(rhs) < _term_key(lhs):
        lhs, rhs = rhs, lhs
    return EqAtom(lhs, rhs)


def neq(lhs: Term, rhs: Term) -> Formula:
    """Disequality: negated equality atom."""
    return neg(eq(lhs, rhs))


def neg(formula: Formula) -> Formula:
    if formula is TRUE:
        return FALSE
    if formula is FALSE:
        return TRUE
    if isinstance(formula, Not):
        return formula.body
    return Not(formula)


def conj(*formulas: Formula) -> Formula:
    """N-ary conjunction: flattens, folds constants, deduplicates."""
    flat = []
    seen = set()
    for formula in formulas:
        if formula is TRUE:
            continue
        if formula is FALSE:
            return FALSE
        operands = formula.args if isinstance(formula, And) else (formula,)
        for operand in operands:
            if operand is FALSE:
                return FALSE
            if operand is not TRUE and operand not in seen:
                seen.add(operand)
                flat.append(operand)
    for operand in flat:
        if neg(operand) in seen:
            return FALSE
    if not flat:
        return TRUE
    if len(flat) == 1:
        return flat[0]
    return And(tuple(flat))


def disj(*formulas: Formula) -> Formula:
    """N-ary disjunction: flattens, folds constants, deduplicates."""
    flat = []
    seen = set()
    for formula in formulas:
        if formula is FALSE:
            continue
        if formula is TRUE:
            return TRUE
        operands = formula.args if isinstance(formula, Or) else (formula,)
        for operand in operands:
            if operand is TRUE:
                return TRUE
            if operand is not FALSE and operand not in seen:
                seen.add(operand)
                flat.append(operand)
    for operand in flat:
        if neg(operand) in seen:
            return TRUE
    if not flat:
        return FALSE
    if len(flat) == 1:
        return flat[0]
    return Or(tuple(flat))


def implies(antecedent: Formula, consequent: Formula) -> Formula:
    return disj(neg(antecedent), consequent)


def ite(cond: Formula, then: Formula, otherwise: Formula) -> Formula:
    """If-then-else as a formula: ``(cond && then) || (!cond && otherwise)``."""
    return disj(conj(cond, then), conj(neg(cond), otherwise))


# ---------------------------------------------------------------------------
# Traversal utilities
# ---------------------------------------------------------------------------


def atoms(formula: Formula) -> Iterator[Formula]:
    """Yield every atom (``EqAtom`` or ``PredAtom``) in ``formula``."""
    stack = [formula]
    seen = set()
    while stack:
        node = stack.pop()
        if isinstance(node, (EqAtom, PredAtom)):
            if node not in seen:
                seen.add(node)
                yield node
        elif isinstance(node, Not):
            stack.append(node.body)
        elif isinstance(node, (And, Or)):
            stack.extend(node.args)
        elif isinstance(node, (Exists, Forall)):
            stack.append(node.body)


def map_atoms(formula: Formula, fn: Callable[[Formula], Formula]) -> Formula:
    """Rebuild ``formula`` with every atom replaced by ``fn(atom)``.

    The replacement may be an arbitrary formula; connectives are rebuilt
    with the smart constructors, so constant folding happens on the way up.
    """
    if isinstance(formula, (EqAtom, PredAtom)):
        return fn(formula)
    if isinstance(formula, Truth):
        return formula
    if isinstance(formula, Not):
        return neg(map_atoms(formula.body, fn))
    if isinstance(formula, And):
        return conj(*(map_atoms(a, fn) for a in formula.args))
    if isinstance(formula, Or):
        return disj(*(map_atoms(a, fn) for a in formula.args))
    if isinstance(formula, Exists):
        return Exists(formula.var, map_atoms(formula.body, fn))
    if isinstance(formula, Forall):
        return Forall(formula.var, map_atoms(formula.body, fn))
    raise TypeError(f"unknown formula node: {formula!r}")


def substitute_atom(formula: Formula, atom: Formula, value: bool) -> Formula:
    """Replace one atom by a truth constant and fold."""
    replacement = TRUE if value else FALSE
    return map_atoms(formula, lambda a: replacement if a == atom else a)


def is_literal(formula: Formula) -> bool:
    """True for atoms and negated atoms."""
    if isinstance(formula, (EqAtom, PredAtom)):
        return True
    return isinstance(formula, Not) and isinstance(
        formula.body, (EqAtom, PredAtom)
    )


def literal_parts(literal: Formula) -> Tuple[Formula, bool]:
    """Decompose a literal into ``(atom, polarity)``."""
    if isinstance(literal, Not):
        return literal.body, False
    return literal, True


def free_logic_vars(formula: Formula) -> frozenset:
    """Free logical variables of a ``PredAtom`` formula.

    Equality atoms contribute the names of their :class:`Base` roots
    when the terms are bare variables.
    """
    bound: list = []

    def walk(node: Formula) -> frozenset:
        if isinstance(node, PredAtom):
            return frozenset(a for a in node.args if a not in bound)
        if isinstance(node, EqAtom):
            names = set()
            for term in (node.lhs, node.rhs):
                if isinstance(term, Base) and term.name not in bound:
                    names.add(term.name)
            return frozenset(names)
        if isinstance(node, Truth):
            return frozenset()
        if isinstance(node, Not):
            return walk(node.body)
        if isinstance(node, (And, Or)):
            result: frozenset = frozenset()
            for arg in node.args:
                result |= walk(arg)
            return result
        if isinstance(node, (Exists, Forall)):
            bound.append(node.var)
            result = walk(node.body)
            bound.pop()
            return result - {node.var}
        raise TypeError(f"unknown formula node: {node!r}")

    return walk(formula)


def rename_pred_args(formula: Formula, mapping: dict) -> Formula:
    """Rename the argument variables of every ``PredAtom``."""

    def rename(atom: Formula) -> Formula:
        if isinstance(atom, PredAtom):
            return PredAtom(
                atom.name, tuple(mapping.get(a, a) for a in atom.args)
            )
        return atom

    return map_atoms(formula, rename)


def map_terms(formula: Formula, fn: Callable[[Term], Term]) -> Formula:
    """Rewrite the terms of every ``EqAtom`` with ``fn``."""

    def rewrite(atom: Formula) -> Formula:
        if isinstance(atom, EqAtom):
            return eq(fn(atom.lhs), fn(atom.rhs))
        return atom

    return map_atoms(formula, rewrite)


def formula_size(formula: Formula) -> int:
    """Node count, used in tests and derivation statistics."""
    if isinstance(formula, (Truth, EqAtom, PredAtom)):
        return 1
    if isinstance(formula, Not):
        return 1 + formula_size(formula.body)
    if isinstance(formula, (And, Or)):
        return 1 + sum(formula_size(a) for a in formula.args)
    if isinstance(formula, (Exists, Forall)):
        return 1 + formula_size(formula.body)
    raise TypeError(f"unknown formula node: {formula!r}")
