"""2-valued logical structures (Section 5.1).

A 2-valued structure is a pair ``(U, ι)`` of a universe of individuals and
an interpretation mapping each predicate symbol of arity ``k`` to a set of
``k``-tuples over ``U``.  TVP program states are such structures; the TVLA
layer abstracts them into 3-valued structures.

Individuals are plain integers allocated by the structure.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, Iterator, Optional, Set, Tuple

from repro.logic.formula import (
    And,
    EqAtom,
    Exists,
    Forall,
    Formula,
    Not,
    Or,
    PredAtom,
    Truth,
)
from repro.logic.terms import Base


@dataclass(frozen=True, order=True)
class PredicateSymbol:
    """A predicate symbol with a fixed arity."""

    name: str
    arity: int

    def __str__(self) -> str:
        return f"{self.name}/{self.arity}"


class TwoValuedStructure:
    """A mutable 2-valued logical structure."""

    def __init__(self, predicates: Iterable[PredicateSymbol] = ()) -> None:
        self.predicates: Dict[str, PredicateSymbol] = {}
        self.universe: Set[int] = set()
        self._tuples: Dict[str, Set[Tuple[int, ...]]] = {}
        self._next_individual = 0
        for symbol in predicates:
            self.declare(symbol)

    # -- schema -------------------------------------------------------------

    def declare(self, symbol: PredicateSymbol) -> None:
        existing = self.predicates.get(symbol.name)
        if existing is not None and existing != symbol:
            raise ValueError(
                f"predicate {symbol.name} redeclared with arity "
                f"{symbol.arity} (was {existing.arity})"
            )
        self.predicates[symbol.name] = symbol
        self._tuples.setdefault(symbol.name, set())

    # -- universe -----------------------------------------------------------

    def new_individual(self) -> int:
        """Allocate a fresh individual (all predicates false on it)."""
        individual = self._next_individual
        self._next_individual += 1
        self.universe.add(individual)
        return individual

    def remove_individual(self, individual: int) -> None:
        """Remove an individual and every tuple mentioning it.

        Tuple sets are filtered in place, and only where the individual
        actually occurs — most predicates never mention it, and a full
        rebuild of every set made removal O(P·T) regardless."""
        self.universe.discard(individual)
        for tuples in self._tuples.values():
            stale = [t for t in tuples if individual in t]
            if stale:
                tuples.difference_update(stale)

    # -- interpretation -----------------------------------------------------

    def set_value(self, name: str, args: Tuple[int, ...], value: bool) -> None:
        symbol = self.predicates[name]
        if len(args) != symbol.arity:
            raise ValueError(
                f"{name} expects {symbol.arity} args, got {len(args)}"
            )
        if value:
            self._tuples[name].add(args)
        else:
            self._tuples[name].discard(args)

    def value(self, name: str, args: Tuple[int, ...]) -> bool:
        return args in self._tuples[name]

    def tuples(self, name: str) -> FrozenSet[Tuple[int, ...]]:
        return frozenset(self._tuples[name])

    def clear(self, name: str) -> None:
        self._tuples[name] = set()

    def copy(self) -> "TwoValuedStructure":
        clone = TwoValuedStructure(self.predicates.values())
        clone.universe = set(self.universe)
        clone._tuples = {k: set(v) for k, v in self._tuples.items()}
        clone._next_individual = self._next_individual
        return clone

    # -- evaluation ---------------------------------------------------------

    def evaluate(
        self, formula: Formula, env: Optional[Dict[str, int]] = None
    ) -> bool:
        """Evaluate a closed-under-``env`` formula in this structure."""
        env = env or {}
        return self._eval(formula, env)

    def _eval(self, formula: Formula, env: Dict[str, int]) -> bool:
        if isinstance(formula, Truth):
            return formula.value
        if isinstance(formula, PredAtom):
            args = tuple(self._lookup(a, env) for a in formula.args)
            return self.value(formula.name, args)
        if isinstance(formula, EqAtom):
            lhs = self._term_value(formula.lhs, env)
            rhs = self._term_value(formula.rhs, env)
            return lhs == rhs
        if isinstance(formula, Not):
            return not self._eval(formula.body, env)
        if isinstance(formula, And):
            return all(self._eval(a, env) for a in formula.args)
        if isinstance(formula, Or):
            return any(self._eval(a, env) for a in formula.args)
        if isinstance(formula, Exists):
            return any(
                self._eval(formula.body, {**env, formula.var: u})
                for u in self.universe
            )
        if isinstance(formula, Forall):
            return all(
                self._eval(formula.body, {**env, formula.var: u})
                for u in self.universe
            )
        raise TypeError(f"unknown formula node: {formula!r}")

    def _lookup(self, name: str, env: Dict[str, int]) -> int:
        if name not in env:
            raise KeyError(f"unbound logical variable {name!r}")
        return env[name]

    def _term_value(self, term, env: Dict[str, int]) -> int:
        if isinstance(term, Base):
            return self._lookup(term.name, env)
        raise TypeError(
            "2-valued evaluation only supports variable equality atoms; "
            f"got term {term!r}"
        )

    def satisfying_assignments(
        self, formula: Formula, variables: Tuple[str, ...]
    ) -> Iterator[Tuple[int, ...]]:
        """All tuples over the universe satisfying ``formula``."""
        for assignment in itertools.product(
            sorted(self.universe), repeat=len(variables)
        ):
            env = dict(zip(variables, assignment))
            if self.evaluate(formula, env):
                yield assignment

    # -- comparison ---------------------------------------------------------

    def canonical_key(self):
        """A hashable key identifying the structure up to nothing (exact)."""
        return (
            frozenset(self.universe),
            frozenset(
                (name, frozenset(tuples))
                for name, tuples in self._tuples.items()
            ),
        )

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TwoValuedStructure):
            return NotImplemented
        return self.canonical_key() == other.canonical_key()

    def __hash__(self) -> int:
        return hash(self.canonical_key())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        rows = [f"U = {sorted(self.universe)}"]
        for name in sorted(self._tuples):
            rows.append(f"{name} = {sorted(self._tuples[name])}")
        return "Structure(" + "; ".join(rows) + ")"
