"""Ground terms of the access-path logic.

The abstraction-derivation stage of the paper (Section 4.1) manipulates
formulae such as ``i.defVer != i.set.ver`` whose atoms compare *access
paths*: a root variable followed by a sequence of field selections.  During
the backward weakest-precondition computation, ``new`` expressions introduce
*fresh allocation tokens*, which are known to be distinct from every
pre-state value.

Terms are immutable and hashable, so they can be used as dictionary keys by
the congruence-closure engine.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, Optional, Tuple, Union


@dataclass(frozen=True, order=True)
class Base:
    """A named constant: a specification free variable (``i``, ``v``), a
    client variable, a method parameter, or the distinguished ``null``.

    ``sort`` optionally records the declared type of the variable (e.g.
    ``"Iterator"``); it is used when enumerating variable renamings during
    predicate-family matching.
    """

    name: str
    sort: Optional[str] = None

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True, order=True)
class Fresh:
    """A fresh allocation token introduced by a ``new`` expression.

    A fresh token denotes an object allocated during the operation whose
    weakest precondition is being computed.  It is therefore distinct from
    every pre-state value (any :class:`Base`-rooted path) and from every
    *other* fresh token.

    ``label`` uniquely identifies the allocation occurrence; ``sort`` is the
    allocated class name.
    """

    label: str
    sort: Optional[str] = None

    def __str__(self) -> str:
        return f"ν<{self.label}>"


@dataclass(frozen=True, order=True)
class Field:
    """A field selection ``base.field``."""

    base: "Term"
    field: str

    def __str__(self) -> str:
        return f"{self.base}.{self.field}"


Term = Union[Base, Fresh, Field]

NULL = Base("null")


def root(term: Term) -> Union[Base, Fresh]:
    """Return the root constant of an access path."""
    while isinstance(term, Field):
        term = term.base
    return term


def fields_of(term: Term) -> Tuple[str, ...]:
    """Return the field sequence of ``term``, outermost last.

    >>> fields_of(Field(Field(Base("i"), "set"), "ver"))
    ('set', 'ver')
    """
    fields = []
    while isinstance(term, Field):
        fields.append(term.field)
        term = term.base
    return tuple(reversed(fields))


def make_path(base: Union[Base, Fresh], fields: Tuple[str, ...]) -> Term:
    """Build an access path from a root and a field sequence."""
    term: Term = base
    for field in fields:
        term = Field(term, field)
    return term


def depth(term: Term) -> int:
    """Number of field selections in ``term``."""
    count = 0
    while isinstance(term, Field):
        count += 1
        term = term.base
    return count


def subterms(term: Term) -> Iterator[Term]:
    """Yield ``term`` and all of its prefixes, innermost first."""
    prefixes = []
    while True:
        prefixes.append(term)
        if not isinstance(term, Field):
            break
        term = term.base
    yield from reversed(prefixes)


def rename_roots(term: Term, mapping: dict) -> Term:
    """Replace root :class:`Base` constants of ``term`` per ``mapping``.

    ``mapping`` maps :class:`Base` instances to arbitrary terms, so this
    doubles as the substitution used for parameter binding during method
    inlining.
    """
    if isinstance(term, Field):
        return Field(rename_roots(term.base, mapping), term.field)
    if isinstance(term, Base) and term in mapping:
        return mapping[term]
    return term


def is_prestate(term: Term) -> bool:
    """True if ``term`` denotes a pre-state value (no fresh token root)."""
    return isinstance(root(term), Base)
