"""Compiled formula evaluation with hash-consing (the performance layer).

The TVLA engine evaluates the same handful of formulas — the action
updates and ``requires`` conditions of the specialized TVP program —
millions of times across focus/update/coerce.  The recursive
``isinstance`` interpreter in :meth:`ThreeValuedStructure._eval` pays
dispatch on every node and copies the environment dict on every
quantifier binding.  This module removes both costs:

* :func:`intern` hash-conses :class:`~repro.logic.formula.Formula`
  nodes, so structurally-equal formulas become reference-equal and share
  one compiled evaluator;
* :func:`compile_formula` compiles a formula **once** into a tree of
  flat closures.  Free and quantified variables become positional slots
  in a single reusable list — quantifiers are plain loops that write
  their slot in place (no ``{**env, var: node}`` dict per binding), and
  every connective short-circuits exactly like the interpreter;
* :func:`evaluate` is the drop-in replacement for
  ``ThreeValuedStructure._eval`` used by
  :meth:`ThreeValuedStructure.eval`;
* :func:`compile_condition` gives the generic-analysis certifiers the
  same treatment for their 3-valued (``True``/``False``/``None``)
  condition evaluation over heap domains, with atom evaluation (which
  threads abstract state) left to a callback.

The interpreted path stays available — ``with interpreted(): ...``
disables compilation process-wide, which the bench harness uses to
measure the speedup honestly in a single run, and the
``REPRO_INTERPRETED=1`` environment variable disables it at import time
for profiling.
"""

from __future__ import annotations

import os
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Tuple

from repro.logic.formula import (
    And,
    EqAtom,
    Exists,
    Forall,
    Formula,
    Not,
    Or,
    PredAtom,
    Truth,
)
from repro.logic.kleene import FALSE3, HALF, Kleene, TRUE3
from repro.logic.terms import Base

# -- toggle ---------------------------------------------------------------------

_enabled = os.environ.get("REPRO_INTERPRETED", "") not in ("1", "true", "yes")


def compilation_enabled() -> bool:
    """Whether :meth:`ThreeValuedStructure.eval` uses compiled closures."""
    return _enabled


def set_compilation(enabled: bool) -> None:
    global _enabled
    _enabled = bool(enabled)


class interpreted:
    """Context manager forcing the interpreted evaluator (bench baseline)."""

    def __enter__(self) -> "interpreted":
        self._saved = _enabled
        set_compilation(False)
        return self

    def __exit__(self, *exc) -> None:
        set_compilation(self._saved)


# -- hash-consing ----------------------------------------------------------------

_INTERN: Dict[Formula, Formula] = {}


def intern(formula: Formula) -> Formula:
    """Return the canonical instance of a structurally-equal formula.

    Children are interned first, so two formulas that compare equal
    always intern to the *same* object graph — which in turn means they
    share one compiled evaluator and compare by identity thereafter.
    """
    if isinstance(formula, Truth):
        return formula  # TRUE / FALSE are already singletons by use
    if isinstance(formula, (EqAtom, PredAtom)):
        return _INTERN.setdefault(formula, formula)
    if isinstance(formula, Not):
        body = intern(formula.body)
        rebuilt = formula if body is formula.body else Not(body)
        return _INTERN.setdefault(rebuilt, rebuilt)
    if isinstance(formula, (And, Or)):
        args = tuple(intern(a) for a in formula.args)
        if all(a is b for a, b in zip(args, formula.args)):
            rebuilt = formula
        else:
            rebuilt = type(formula)(args)
        return _INTERN.setdefault(rebuilt, rebuilt)
    if isinstance(formula, (Exists, Forall)):
        body = intern(formula.body)
        rebuilt = (
            formula
            if body is formula.body
            else type(formula)(formula.var, body)
        )
        return _INTERN.setdefault(rebuilt, rebuilt)
    raise TypeError(f"unknown formula node {formula!r}")


def intern_table_size() -> int:
    return len(_INTERN)


# -- compilation to closures -----------------------------------------------------

#: a compiled node: ``(structure, slots) -> Kleene``
EvalFn = Callable[[object, List[int]], Kleene]

_EMPTY: Dict = {}


@dataclass(frozen=True)
class CompiledFormula:
    """A formula compiled to a slot-based closure evaluator."""

    formula: Formula
    free_vars: Tuple[str, ...]
    num_slots: int
    fn: EvalFn

    def __call__(
        self, structure, env: Optional[Dict[str, int]] = None
    ) -> Kleene:
        slots = [0] * self.num_slots
        if self.free_vars:
            if env is None:
                raise KeyError(self.free_vars[0])
            for index, name in enumerate(self.free_vars):
                slots[index] = env[name]
        return self.fn(structure, slots)


class CompileError(TypeError):
    """The formula contains constructs the closure compiler rejects
    (e.g. equality over non-variable terms); callers fall back to the
    interpreter."""


def _compile_node(
    formula: Formula, slot_of: Dict[str, int], high_water: List[int]
) -> EvalFn:
    if isinstance(formula, Truth):
        constant = TRUE3 if formula.value else FALSE3

        def eval_truth(S, env, constant=constant):
            return constant

        return eval_truth

    if isinstance(formula, PredAtom):
        name = formula.name
        try:
            slots = tuple(slot_of[a] for a in formula.args)
        except KeyError as missing:
            raise CompileError(
                f"unbound variable {missing} in {formula}"
            ) from None
        if not slots:

            def eval_nullary(S, env, name=name):
                return S.nullary.get(name, FALSE3)

            return eval_nullary
        if len(slots) == 1:
            slot = slots[0]

            def eval_unary(S, env, name=name, slot=slot):
                return S.unary.get(name, _EMPTY).get(env[slot], FALSE3)

            return eval_unary
        if len(slots) == 2:
            i, j = slots

            def eval_binary(S, env, name=name, i=i, j=j):
                return S.binary.get(name, _EMPTY).get(
                    (env[i], env[j]), FALSE3
                )

            return eval_binary
        raise CompileError(f"unsupported predicate arity in {formula}")

    if isinstance(formula, EqAtom):
        if not isinstance(formula.lhs, Base) or not isinstance(
            formula.rhs, Base
        ):
            raise CompileError(
                f"3-valued equality supports logical variables only; "
                f"got {formula}"
            )
        try:
            i = slot_of[formula.lhs.name]
            j = slot_of[formula.rhs.name]
        except KeyError as missing:
            raise CompileError(
                f"unbound variable {missing} in {formula}"
            ) from None

        def eval_eq(S, env, i=i, j=j):
            lhs = env[i]
            if lhs != env[j]:
                return FALSE3
            return HALF if S.summary.get(lhs, False) else TRUE3

        return eval_eq

    if isinstance(formula, Not):
        body = _compile_node(formula.body, slot_of, high_water)

        def eval_not(S, env, body=body):
            return body(S, env).logical_not()

        return eval_not

    if isinstance(formula, And):
        parts = tuple(
            _compile_node(a, slot_of, high_water) for a in formula.args
        )

        def eval_and(S, env, parts=parts):
            result = TRUE3
            for part in parts:
                value = part(S, env)
                if value is FALSE3:
                    return FALSE3
                if value is HALF:
                    result = HALF
            return result

        return eval_and

    if isinstance(formula, Or):
        parts = tuple(
            _compile_node(a, slot_of, high_water) for a in formula.args
        )

        def eval_or(S, env, parts=parts):
            result = FALSE3
            for part in parts:
                value = part(S, env)
                if value is TRUE3:
                    return TRUE3
                if value is HALF:
                    result = HALF
            return result

        return eval_or

    if isinstance(formula, (Exists, Forall)):
        saved = slot_of.get(formula.var)
        # a shadowing binder still needs its own slot; allocate past the
        # high-water mark so sibling binders never clash
        slot = max(len(slot_of), high_water[0])
        slot_of[formula.var] = slot
        high_water[0] = max(high_water[0], slot + 1)
        body = _compile_node(formula.body, slot_of, high_water)
        if saved is None:
            del slot_of[formula.var]
        else:
            slot_of[formula.var] = saved
        if isinstance(formula, Exists):

            def eval_exists(S, env, body=body, slot=slot):
                result = FALSE3
                for node in S.nodes:
                    env[slot] = node
                    value = body(S, env)
                    if value is TRUE3:
                        return TRUE3
                    if value is HALF:
                        result = HALF
                return result

            return eval_exists

        def eval_forall(S, env, body=body, slot=slot):
            result = TRUE3
            for node in S.nodes:
                env[slot] = node
                value = body(S, env)
                if value is FALSE3:
                    return FALSE3
                if value is HALF:
                    result = HALF
            return result

        return eval_forall

    raise CompileError(f"unknown formula node {formula!r}")


def _free_vars_ordered(formula: Formula) -> Tuple[str, ...]:
    """Free variables in first-occurrence order (deterministic slots)."""
    seen: List[str] = []
    bound: List[str] = []

    def walk(node: Formula) -> None:
        if isinstance(node, PredAtom):
            for arg in node.args:
                if arg not in bound and arg not in seen:
                    seen.append(arg)
        elif isinstance(node, EqAtom):
            for term in (node.lhs, node.rhs):
                if (
                    isinstance(term, Base)
                    and term.name not in bound
                    and term.name not in seen
                ):
                    seen.append(term.name)
        elif isinstance(node, Not):
            walk(node.body)
        elif isinstance(node, (And, Or)):
            for arg in node.args:
                walk(arg)
        elif isinstance(node, (Exists, Forall)):
            bound.append(node.var)
            walk(node.body)
            bound.pop()

    walk(formula)
    return tuple(seen)


#: compiled-evaluator cache keyed by the *interned* formula
_COMPILED: Dict[Formula, Optional[CompiledFormula]] = {}

#: per-object fast path: id -> (formula ref, compiled-or-None).  Holding
#: the reference keeps the id stable; formulas are built once per
#: derivation, so this stays small.
_BY_ID: Dict[int, Tuple[Formula, Optional[CompiledFormula]]] = {}


def compile_formula(formula: Formula) -> Optional[CompiledFormula]:
    """Compile (and cache) a formula; ``None`` if it is not compilable.

    The cache is two-level: a per-object identity map (no hashing of the
    formula tree on the hot path) backed by a structural map over
    interned formulas (equal formulas share one evaluator).
    """
    entry = _BY_ID.get(id(formula))
    if entry is not None and entry[0] is formula:
        return entry[1]
    canonical = intern(formula)
    compiled = _COMPILED.get(canonical, _MISSING)
    if compiled is _MISSING:
        free = _free_vars_ordered(canonical)
        slot_of = {name: index for index, name in enumerate(free)}
        high_water = [len(free)]
        try:
            fn = _compile_node(canonical, slot_of, high_water)
        except CompileError:
            compiled = None
        else:
            compiled = CompiledFormula(
                canonical, free, high_water[0], fn
            )
        _COMPILED[canonical] = compiled
    _BY_ID[id(formula)] = (formula, compiled)
    return compiled


_MISSING = object()


def evaluate(
    structure, formula: Formula, env: Optional[Dict[str, int]] = None
) -> Kleene:
    """Evaluate ``formula`` on a 3-valued structure via the compiled path.

    Falls back to the structure's interpreter for formulas the compiler
    rejects, so the result always matches ``structure._eval``.
    """
    compiled = compile_formula(formula)
    if compiled is None:
        return structure._eval(formula, env or {})
    return compiled(structure, env)


def compiled_cache_stats() -> Dict[str, int]:
    """Counters for tests and the bench harness."""
    return {
        "interned": len(_INTERN),
        "compiled": sum(1 for v in _COMPILED.values() if v is not None),
        "uncompilable": sum(1 for v in _COMPILED.values() if v is None),
        "by_id": len(_BY_ID),
    }


# -- generic-analysis conditions -------------------------------------------------

#: compiled 3-valued condition: ``(state, atom_fn) -> (tri, state)`` where
#: ``tri`` is True / False / None and ``atom_fn(atom, state)`` evaluates
#: one atom, threading the (possibly refined) abstract state through.
CondFn = Callable[
    [object, Callable[[Formula, object], Tuple[Optional[bool], object]]],
    Tuple[Optional[bool], object],
]

_COND_BY_ID: Dict[int, Tuple[Formula, CondFn]] = {}


def _compile_cond(cond: Formula) -> CondFn:
    if isinstance(cond, Truth):
        value = cond.value

        def cond_truth(state, atom_fn, value=value):
            return value, state

        return cond_truth
    if isinstance(cond, (EqAtom, PredAtom)):

        def cond_atom(state, atom_fn, atom=cond):
            return atom_fn(atom, state)

        return cond_atom
    if isinstance(cond, Not):
        body = _compile_cond(cond.body)

        def cond_not(state, atom_fn, body=body):
            value, state = body(state, atom_fn)
            return (None if value is None else not value), state

        return cond_not
    if isinstance(cond, And):
        parts = tuple(_compile_cond(a) for a in cond.args)

        def cond_and(state, atom_fn, parts=parts):
            result: Optional[bool] = True
            for part in parts:
                value, state = part(state, atom_fn)
                if value is False:
                    return False, state
                if value is None:
                    result = None
            return result, state

        return cond_and
    if isinstance(cond, Or):
        parts = tuple(_compile_cond(a) for a in cond.args)

        def cond_or(state, atom_fn, parts=parts):
            result: Optional[bool] = False
            for part in parts:
                value, state = part(state, atom_fn)
                if value is True:
                    return True, state
                if value is None:
                    result = None
            return result, state

        return cond_or
    raise TypeError(f"unsupported condition {cond!r}")


def compile_condition(cond: Formula) -> CondFn:
    """Compile (and cache, by identity) a heap-domain condition formula."""
    entry = _COND_BY_ID.get(id(cond))
    if entry is not None and entry[0] is cond:
        return entry[1]
    fn = _compile_cond(cond)
    _COND_BY_ID[id(cond)] = (cond, fn)
    return fn
