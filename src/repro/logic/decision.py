"""Decision procedures for the access-path alias logic.

The derivation stage (Section 4.1) needs to decide, at certifier-generation
time, questions like "is this weakest-precondition disjunct equivalent to an
already-derived instrumentation predicate?" and "can this literal be dropped
under the method's precondition?".  The paper notes that simple syntactic
checks suffice for termination on examples like CMP, but that *more powerful
decision procedures reduce the number of generated predicates* (Section
4.5).  Both are provided here:

* :func:`satisfiable` / :func:`entails` / :func:`equivalent` — a small
  DPLL-style enumeration over the equality atoms of the query, with
  congruence-closure theory checks (EUF + fresh-token distinctness) at the
  leaves.  Exponential in the atom count of the *query*, which is tiny and
  paid only at certifier-generation time — exactly the staging argument of
  Section 1.3.
* :func:`minimize_disjunct` / :func:`minimize_dnf` — greedy semantic
  minimization of a DNF under an assumption (the method precondition),
  which is what collapses the exact WP of ``Iterator.remove()`` to the
  paper's ``stale ∨ mutx`` form.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.logic.congruence import CongruenceClosure, Inconsistent
from repro.logic.formula import (
    FALSE,
    TRUE,
    EqAtom,
    Formula,
    Truth,
    atoms,
    conj,
    disj,
    neg,
    substitute_atom,
)
from repro.logic.normal import conjunct_literals, to_dnf


def _theory_consistent(literals: List[Tuple[EqAtom, bool]]) -> bool:
    """Check EUF + fresh-token consistency of a set of equality literals."""
    cc = CongruenceClosure()
    try:
        for atom, polarity in literals:
            if polarity:
                cc.assert_equal(atom.lhs, atom.rhs)
            else:
                cc.assert_unequal(atom.lhs, atom.rhs)
    except Inconsistent:
        return False
    return True


def satisfiable(formula: Formula) -> bool:
    """Satisfiability over the access-path alias theory."""
    return _sat(formula, [])


def _sat(formula: Formula, trail: List[Tuple[EqAtom, bool]]) -> bool:
    if formula is FALSE:
        return False
    if not _theory_consistent(trail):
        return False
    if formula is TRUE:
        return True
    atom = _pick_atom(formula)
    if atom is None:
        # No equality atoms left but formula is not a constant: it contains
        # PredAtoms, which are uninterpreted here — treat each consistently.
        return _sat_propositional(formula)
    for value in (True, False):
        trail.append((atom, value))
        if _sat(substitute_atom(formula, atom, value), trail):
            trail.pop()
            return True
        trail.pop()
    return False


def _pick_atom(formula: Formula) -> Optional[EqAtom]:
    for atom in atoms(formula):
        if isinstance(atom, EqAtom):
            return atom
    return None


def _sat_propositional(formula: Formula) -> bool:
    """Pure propositional satisfiability over the remaining PredAtoms."""
    if isinstance(formula, Truth):
        return formula.value
    remaining = list(atoms(formula))
    if not remaining:
        return formula is TRUE
    atom = remaining[0]
    return _sat_propositional(
        substitute_atom(formula, atom, True)
    ) or _sat_propositional(substitute_atom(formula, atom, False))


def entails(antecedent: Formula, consequent: Formula) -> bool:
    """``antecedent ⊨ consequent`` over the alias theory."""
    return not satisfiable(conj(antecedent, neg(consequent)))


def equivalent(lhs: Formula, rhs: Formula) -> bool:
    """Logical equivalence over the alias theory."""
    return entails(lhs, rhs) and entails(rhs, lhs)


def valid(formula: Formula) -> bool:
    """Validity over the alias theory."""
    return not satisfiable(neg(formula))


# ---------------------------------------------------------------------------
# Minimization under an assumption
# ---------------------------------------------------------------------------


def minimize_disjunct(
    disjunct: Formula, whole: Formula, assumption: Formula = TRUE
) -> Formula:
    """Greedily drop literals from one DNF disjunct.

    A literal ``l`` of ``disjunct`` can be dropped when the weakened
    disjunct stays within the original formula under the assumption::

        assumption ∧ (disjunct − l)  ⊨  whole

    This preserves ``whole``'s meaning under ``assumption`` while producing
    the weakest (hence most reusable) candidate predicates.  For
    ``Iterator.remove()`` it is what reduces the exact weakest precondition
    of ``stale(i)`` to ``stale(i) ∨ mutx(i, j)`` under the precondition
    ``¬stale(j)`` (see Section 4.1, Step 3).
    """
    literals = conjunct_literals(disjunct)
    changed = True
    while changed:
        changed = False
        for index in range(len(literals)):
            candidate = literals[:index] + literals[index + 1 :]
            weakened = conj(*candidate) if candidate else TRUE
            if entails(conj(assumption, weakened), whole):
                literals = candidate
                changed = True
                break
    return conj(*literals) if literals else TRUE


def minimize_dnf(
    disjuncts: List[Formula], assumption: Formula = TRUE
) -> List[Formula]:
    """Minimize a whole DNF under an assumption.

    Drops disjuncts unsatisfiable with the assumption, minimizes each
    remaining disjunct with :func:`minimize_disjunct`, and finally removes
    disjuncts entailed (under the assumption) by the disjunction of the
    others.
    """
    whole = disj(*disjuncts)
    live = [
        d for d in disjuncts if satisfiable(conj(assumption, d))
    ]
    minimized: List[Formula] = []
    seen = set()
    for disjunct in live:
        reduced = minimize_disjunct(disjunct, whole, assumption)
        if reduced not in seen:
            seen.add(reduced)
            minimized.append(reduced)
    if any(d is TRUE for d in minimized):
        return [TRUE]
    result: List[Formula] = []
    for index, disjunct in enumerate(minimized):
        others = result + minimized[index + 1 :]
        if others and entails(conj(assumption, disjunct), disj(*others)):
            continue
        result.append(disjunct)
    return result


def normalize_to_minimal_dnf(
    formula: Formula, assumption: Formula = TRUE
) -> List[Formula]:
    """DNF + minimization in one step; the derivation-stage workhorse."""
    return minimize_dnf(to_dnf(formula), assumption)
