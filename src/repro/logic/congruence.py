"""Congruence closure for the ground access-path logic.

The theory is EUF restricted to constants (:class:`~repro.logic.terms.Base`
and :class:`~repro.logic.terms.Fresh`) and unary functions (field
selections), extended with the *fresh-token axioms*: a fresh allocation
token is distinct from every pre-state value (every ``Base``-rooted path)
and from every other fresh token.

The implementation is a straightforward union-find with congruence
propagation over field selections; the term universes involved in
abstraction derivation are tiny (tens of terms), so simplicity wins over
asymptotics.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Set, Tuple

from repro.logic.terms import Base, Field, Fresh, Term, root, subterms


class Inconsistent(Exception):
    """Raised when an asserted literal contradicts the current closure."""


class CongruenceClosure:
    """Incremental congruence closure over access-path terms."""

    def __init__(self) -> None:
        self._parent: Dict[Term, Term] = {}
        self._disequalities: List[Tuple[Term, Term]] = []
        # For congruence propagation: map (representative, field) to one
        # known Field term over that class.
        self._field_uses: Dict[Tuple[Term, str], Term] = {}

    # -- union-find ---------------------------------------------------------

    def _add(self, term: Term) -> None:
        for sub in subterms(term):
            if sub not in self._parent:
                self._parent[sub] = sub
                if isinstance(sub, Field):
                    self._register_use(sub)

    def _register_use(self, field_term: Field) -> None:
        key = (self.find(field_term.base), field_term.field)
        existing = self._field_uses.get(key)
        if existing is None:
            self._field_uses[key] = field_term
        elif self.find(existing) != self.find(field_term):
            self._union(existing, field_term)

    def find(self, term: Term) -> Term:
        self._add(term)
        node = term
        while self._parent[node] != node:
            self._parent[node] = self._parent[self._parent[node]]
            node = self._parent[node]
        return node

    def _union(self, a: Term, b: Term) -> None:
        ra, rb = self.find(a), self.find(b)
        if ra == rb:
            return
        self._parent[ra] = rb
        # Re-register every field use whose base class changed, merging
        # congruent field terms.
        for (base_rep, field), use in list(self._field_uses.items()):
            if base_rep == ra and self._field_uses.get((base_rep, field)) is use:
                self._field_uses.pop((base_rep, field), None)
                self._register_use(use)  # type: ignore[arg-type]

    # -- public API ---------------------------------------------------------

    def assert_equal(self, lhs: Term, rhs: Term) -> None:
        """Assert ``lhs == rhs``; raises :class:`Inconsistent` on clash."""
        self._add(lhs)
        self._add(rhs)
        self._union(lhs, rhs)
        self.check()

    def assert_unequal(self, lhs: Term, rhs: Term) -> None:
        """Assert ``lhs != rhs``; raises :class:`Inconsistent` on clash."""
        self._add(lhs)
        self._add(rhs)
        self._disequalities.append((lhs, rhs))
        self.check()

    def are_equal(self, lhs: Term, rhs: Term) -> bool:
        """True if the closure entails ``lhs == rhs``."""
        # register both terms first: adding the second may trigger a
        # congruence union that changes the first's representative
        self.find(lhs)
        self.find(rhs)
        return self.find(lhs) == self.find(rhs)

    def classes(self) -> Dict[Term, Set[Term]]:
        """The current partition, keyed by representative."""
        partition: Dict[Term, Set[Term]] = {}
        for term in list(self._parent):
            partition.setdefault(self.find(term), set()).add(term)
        return partition

    def check(self) -> None:
        """Raise :class:`Inconsistent` if the closure violates a
        disequality or a fresh-token axiom."""
        for lhs, rhs in self._disequalities:
            if self.find(lhs) == self.find(rhs):
                raise Inconsistent(f"{lhs} == {rhs} contradicts {lhs} != {rhs}")
        for rep, members in self.classes().items():
            fresh_tokens = {m for m in members if isinstance(m, Fresh)}
            if not fresh_tokens:
                continue
            if len(fresh_tokens) > 1:
                raise Inconsistent(
                    f"distinct fresh tokens identified: {fresh_tokens}"
                )
            prestate = {
                m
                for m in members
                if not isinstance(m, Fresh) and isinstance(root(m), Base)
            }
            if prestate:
                token = next(iter(fresh_tokens))
                raise Inconsistent(
                    f"fresh token {token} identified with pre-state "
                    f"value(s) {sorted(map(str, prestate))}"
                )

    def is_consistent(self) -> bool:
        try:
            self.check()
        except Inconsistent:
            return False
        return True


def closure_of(
    equalities: Iterable[Tuple[Term, Term]],
    disequalities: Iterable[Tuple[Term, Term]] = (),
) -> CongruenceClosure:
    """Build a closure from literal lists; raises on inconsistency."""
    cc = CongruenceClosure()
    for lhs, rhs in equalities:
        cc.assert_equal(lhs, rhs)
    for lhs, rhs in disequalities:
        cc.assert_unequal(lhs, rhs)
    return cc
