"""Packed bitset representation of 3-valued structures (the state kernel).

The dict representation in :class:`repro.tvla.three_valued.ThreeValuedStructure`
stores every predicate as a ``Dict[tuple, Kleene]``: each copy during
focus/update walks and rebuilds those dicts, each canonicalization folds
them entry by entry, and each canonical key hashes frozensets of tuples.
For loop-heavy heap clients those three operations dominate the fixpoint.

:class:`PackedStructure` stores each predicate's valuation as **two
bitmask integers** — a *definite-true plane* and a *maybe (1/2) plane*:

* unary ``p``: bit ``n`` of ``u_t[p]`` set iff ``p(n) = 1``; bit ``n``
  of ``u_h[p]`` set iff ``p(n) = 1/2``; neither bit means ``0``.
  The planes are always disjoint.
* binary ``q``: bit ``(n1 << shift) | n2`` in ``b_t[q]`` / ``b_h[q]``
  with a per-structure power-of-two node stride ``width = 1 << shift``
  that doubles (re-spreading the planes) when the universe outgrows it.

Python ints are immutable, so a snapshot is **copy-on-write**: ``copy()``
shares every container and the first mutation on either side takes
ownership of private dicts — focus and update, which copy constantly,
become O(1) per snapshot.  Canonical abstraction folds whole predicate
planes with mask algebra instead of per-entry loops, and
``canonical_key`` is a tuple of remapped plane integers rather than
frozensets of value tuples.

The compiled-formula layer is mirrored here: :func:`compile_packed_formula`
produces the same :class:`~repro.logic.compile.CompiledFormula` slot
protocol, but atoms test plane bits and quantifiers over recognizable
bodies (unary literals and conjunctions of them, binary rows) collapse
into whole-universe mask tests instead of per-node loops.

``PackedStructure`` subclasses ``ThreeValuedStructure`` — the recursive
interpreter ``_eval``, which only goes through ``get``/``summary``/
``nodes``, is inherited, and ``unary``/``binary`` are materializing
properties so the certificate codec (:mod:`repro.cert.model`) serializes
packed and dict structures to byte-identical JSON.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.logic import compile as formula_compile
from repro.logic.compile import (
    CompiledFormula,
    CompileError,
    _free_vars_ordered,
    intern,
)
from repro.logic.formula import (
    And,
    EqAtom,
    Exists,
    Forall,
    Formula,
    Not,
    Or,
    PredAtom,
    Truth,
)
from repro.logic.kleene import FALSE3, HALF, Kleene, TRUE3
from repro.logic.terms import Base
from repro.tvla.three_valued import ThreeValuedStructure

#: Kleene value by its 2-bit plane code: 0 = neither, 1 = true-plane,
#: 2 = half-plane (matches ``Kleene._value_``)
_KLEENE_BY_CODE = (FALSE3, TRUE3, HALF)

_DEFAULT_SHIFT = 4  # binary stride 16: suite/fuzz universes stay under it

#: memoized sorted predicate-name unions, keyed by the two dicts'
#: insertion-order tuples (construction paths recur, so this hits)
_SORTED_PREDS_CACHE: Dict[Tuple[Tuple[str, ...], Tuple[str, ...]], Tuple[str, ...]] = {}


def _sorted_preds(a: Dict[str, int], b: Dict[str, int]) -> Tuple[str, ...]:
    key = (tuple(a), tuple(b))
    cached = _SORTED_PREDS_CACHE.get(key)
    if cached is None:
        if len(_SORTED_PREDS_CACHE) > 4096:
            _SORTED_PREDS_CACHE.clear()
        cached = tuple(sorted(a.keys() | b.keys()))
        _SORTED_PREDS_CACHE[key] = cached
    return cached


class PackedKey:
    """Canonical-key wrapper with a precomputed hash.

    Key tuples carry multi-word plane integers, and tuples re-hash their
    elements on every lookup; with warm transfer memos the engine does
    hundreds of thousands of memo/state-set probes per run, so the
    re-hash dominates replay. Computing the hash once at construction
    makes each probe O(1) (frozenset keys on the dict path get this for
    free — frozensets cache their hash).
    """

    __slots__ = ("k", "_hash")

    def __init__(self, k: tuple) -> None:
        self.k = k
        self._hash = hash(k)

    def __hash__(self) -> int:
        return self._hash

    def __eq__(self, other: object) -> bool:
        if other is self:
            return True
        if type(other) is PackedKey:
            return self._hash == other._hash and self.k == other.k
        return NotImplemented

    def __repr__(self) -> str:
        return f"PackedKey({self.k!r})"

    def __reduce__(self):
        return (PackedKey, (self.k,))


class PackedStructure(ThreeValuedStructure):
    """A 3-valued structure over bit-plane integers (see module docs).

    Drop-in for :class:`ThreeValuedStructure` everywhere the engine,
    certificate codec and checker touch structures; the engines pick the
    representation once per run (``TvlaEngine(packed=True)``) and every
    derived structure stays packed.
    """

    packed = True

    def __init__(self) -> None:
        self.nodes: List[int] = []
        self.summary: Dict[int, bool] = {}
        self.nullary: Dict[str, Kleene] = {}
        #: unary planes: pred -> int (bit n = node n)
        self.u_t: Dict[str, int] = {}
        self.u_h: Dict[str, int] = {}
        #: binary planes: pred -> int (bit (n1 << _shift) | n2)
        self.b_t: Dict[str, int] = {}
        self.b_h: Dict[str, int] = {}
        self._shift = _DEFAULT_SHIFT
        self._width = 1 << _DEFAULT_SHIFT
        self.universe_mask = 0
        self._next = 0
        self._ckey_cache: Dict[Tuple[str, ...], tuple] = {}
        #: abstraction-pred tuple this structure is known to be
        #: vector-ordered for (nodes 0..k-1 sorted by abstraction
        #: vector), or None; set by canonicalize, cleared on mutation
        self._vec_ordered: Optional[Tuple[str, ...]] = None
        #: containers shared with a copy() sibling until first mutation
        self._cow = False

    def dirty(self) -> None:
        if self._ckey_cache:
            self._ckey_cache = {}
        self._vec_ordered = None

    # -- copy-on-write ---------------------------------------------------------

    def copy(self) -> "PackedStructure":
        clone = PackedStructure.__new__(PackedStructure)
        clone.nodes = self.nodes
        clone.summary = self.summary
        clone.nullary = self.nullary
        clone.u_t = self.u_t
        clone.u_h = self.u_h
        clone.b_t = self.b_t
        clone.b_h = self.b_h
        clone._shift = self._shift
        clone._width = self._width
        clone.universe_mask = self.universe_mask
        clone._next = self._next
        clone._ckey_cache = {}
        clone._vec_ordered = self._vec_ordered
        clone._cow = True
        self._cow = True
        return clone

    def _own(self) -> None:
        """Take private ownership of every shared container."""
        self.nodes = list(self.nodes)
        self.summary = dict(self.summary)
        self.nullary = dict(self.nullary)
        self.u_t = dict(self.u_t)
        self.u_h = dict(self.u_h)
        self.b_t = dict(self.b_t)
        self.b_h = dict(self.b_h)
        self._cow = False

    # -- universe --------------------------------------------------------------

    def new_node(self, summary: bool = False) -> int:
        if self._cow:
            self._own()
        node = self._next
        self._next += 1
        if node >= self._width:
            self._grow(node)
        self.nodes.append(node)
        self.summary[node] = summary
        self.universe_mask |= 1 << node
        self.dirty()
        return node

    def _grow(self, node: int) -> None:
        """Double the binary stride until ``node`` fits, re-spreading planes."""
        old_shift = self._shift
        new_shift = old_shift
        while node >= (1 << new_shift):
            new_shift += 1
        old_width = 1 << old_shift
        row_mask = old_width - 1
        for planes in (self.b_t, self.b_h):
            for pred, plane in planes.items():
                spread = 0
                row = 0
                while plane:
                    chunk = plane & row_mask
                    if chunk:
                        spread |= chunk << (row << new_shift)
                    plane >>= old_shift
                    row += 1
                planes[pred] = spread
        self._shift = new_shift
        self._width = 1 << new_shift

    # -- dict-view compatibility ----------------------------------------------

    @property
    def unary(self) -> Dict[str, Dict[int, Kleene]]:
        """Materialized dict view (serialization/debugging; not hot)."""
        view: Dict[str, Dict[int, Kleene]] = {}
        for pred in self.u_t.keys() | self.u_h.keys():
            t = self.u_t.get(pred, 0)
            h = self.u_h.get(pred, 0)
            table: Dict[int, Kleene] = {}
            plane = t
            while plane:
                low = plane & -plane
                table[low.bit_length() - 1] = TRUE3
                plane ^= low
            plane = h
            while plane:
                low = plane & -plane
                table[low.bit_length() - 1] = HALF
                plane ^= low
            if table:
                view[pred] = table
        return view

    @property
    def binary(self) -> Dict[str, Dict[Tuple[int, int], Kleene]]:
        """Materialized dict view (serialization/debugging; not hot)."""
        view: Dict[str, Dict[Tuple[int, int], Kleene]] = {}
        shift = self._shift
        mask = self._width - 1
        for pred in self.b_t.keys() | self.b_h.keys():
            table: Dict[Tuple[int, int], Kleene] = {}
            for plane, value in (
                (self.b_t.get(pred, 0), TRUE3),
                (self.b_h.get(pred, 0), HALF),
            ):
                while plane:
                    low = plane & -plane
                    pos = low.bit_length() - 1
                    table[(pos >> shift, pos & mask)] = value
                    plane ^= low
            if table:
                view[pred] = table
        return view

    # -- values ----------------------------------------------------------------

    def get(self, pred: str, args: Tuple[int, ...]) -> Kleene:
        n = len(args)
        if n == 0:
            return self.nullary.get(pred, FALSE3)
        if n == 1:
            bit = 1 << args[0]
            if self.u_t.get(pred, 0) & bit:
                return TRUE3
            if self.u_h.get(pred, 0) & bit:
                return HALF
            return FALSE3
        bit = 1 << ((args[0] << self._shift) | args[1])
        if self.b_t.get(pred, 0) & bit:
            return TRUE3
        if self.b_h.get(pred, 0) & bit:
            return HALF
        return FALSE3

    def set(self, pred: str, args: Tuple[int, ...], value: Kleene) -> None:
        if self._cow:
            self._own()
        self.dirty()
        n = len(args)
        if n == 0:
            # absent means 0 (get() defaults): keeping the dict sparse
            # makes the canonical key's nullary walk proportional to the
            # non-false entries instead of every instance predicate
            if value is FALSE3:
                self.nullary.pop(pred, None)
            else:
                self.nullary[pred] = value
            return
        if n == 1:
            bit = 1 << args[0]
            planes_t, planes_h = self.u_t, self.u_h
        else:
            bit = 1 << ((args[0] << self._shift) | args[1])
            planes_t, planes_h = self.b_t, self.b_h
        t = planes_t.get(pred, 0)
        h = planes_h.get(pred, 0)
        if value is TRUE3:
            planes_t[pred] = t | bit
            if h & bit:
                planes_h[pred] = h & ~bit
        elif value is HALF:
            planes_h[pred] = h | bit
            if t & bit:
                planes_t[pred] = t & ~bit
        else:
            if t & bit:
                planes_t[pred] = t & ~bit
            if h & bit:
                planes_h[pred] = h & ~bit

    def set_plane(self, pred: str, arity: int, t: int, h: int) -> None:
        """Replace a predicate's entire valuation with precomputed planes.

        The bulk-transfer primitive behind plane-wide update evaluation
        (:func:`compile_update_plane`): one write covers what the
        per-tuple path expresses as ``len(nodes) ** arity`` ``set``
        calls.  ``t`` and ``h`` must be disjoint and only carry bits at
        valid node (pair) positions.
        """
        if self._cow:
            self._own()
        self.dirty()
        if arity == 1:
            planes_t, planes_h = self.u_t, self.u_h
        else:
            planes_t, planes_h = self.b_t, self.b_h
        if t:
            planes_t[pred] = t
        else:
            planes_t.pop(pred, None)
        if h:
            planes_h[pred] = h
        else:
            planes_h.pop(pred, None)

    # -- evaluation ------------------------------------------------------------

    def eval(self, formula: Formula, env: Optional[Dict[str, int]] = None) -> Kleene:
        if formula_compile.compilation_enabled():
            return evaluate_packed(self, formula, env)
        return self._eval(formula, env or {})

    # -- canonical abstraction ---------------------------------------------------

    def _vector_codes(
        self, node: int, abstraction_preds: List[str]
    ) -> Tuple[int, ...]:
        """Per-node abstraction vector as plane codes (0/1/2 = Kleene)."""
        bit = 1 << node
        u_t = self.u_t
        u_h = self.u_h
        return tuple(
            1
            if u_t.get(p, 0) & bit
            else (2 if u_h.get(p, 0) & bit else 0)
            for p in abstraction_preds
        )

    def canonical_vector(
        self, node: int, abstraction_preds: List[str]
    ) -> Tuple[Kleene, ...]:
        return tuple(
            _KLEENE_BY_CODE[c]
            for c in self._vector_codes(node, abstraction_preds)
        )

    def _node_blocks(self, abstraction_preds: List[str]) -> List[int]:
        """Ordered partition of the universe into equal-vector blocks.

        Refines ``[universe]`` pred-by-pred with mask splits, emitting
        the FALSE / TRUE / HALF sub-blocks in code order (0 < 1 < 2), so
        the final block order equals sorting nodes by their abstraction
        vector — without ever materializing a per-node tuple.  Stops as
        soon as every block is a singleton: the order of fully-refined
        blocks can't change under further splits.
        """
        universe = self.universe_mask
        if not universe:
            return []
        blocks = [universe]
        if not (universe & (universe - 1)):
            return blocks  # a single node: nothing to refine
        target = len(self.nodes)
        u_t = self.u_t
        u_h = self.u_h
        for pred in abstraction_preds:
            t = u_t.get(pred, 0)
            h = u_h.get(pred, 0)
            if not (t | h):
                continue  # every node reads 0: no split, no reorder
            out: List[int] = []
            for block in blocks:
                if block & (block - 1):
                    b0 = block & ~(t | h)
                    b1 = block & t
                    b2 = block & h
                    if b0:
                        out.append(b0)
                    if b1:
                        out.append(b1)
                    if b2:
                        out.append(b2)
                else:
                    out.append(block)
            blocks = out
            if len(blocks) == target:
                break
        return blocks

    def _vector_table(
        self, abstraction_preds: List[str]
    ) -> Dict[int, Tuple[int, ...]]:
        """Every node's abstraction vector, computed block-wise.

        Same refinement as :meth:`_node_blocks` but carrying each
        block's code prefix (and no early exit), so cross-structure
        comparisons — the join's vector matching — get full tuples at
        O(preds x blocks) instead of O(preds x nodes).
        """
        universe = self.universe_mask
        if not universe:
            return {}
        u_t = self.u_t
        u_h = self.u_h
        items: List[Tuple[int, List[int]]] = [(universe, [])]
        for pred in abstraction_preds:
            t = u_t.get(pred, 0)
            h = u_h.get(pred, 0)
            out: List[Tuple[int, List[int]]] = []
            for mask, codes in items:
                b0 = mask & ~(t | h)
                b1 = mask & t
                b2 = mask & h
                if b0:
                    out.append((b0, codes + [0]))
                if b1:
                    out.append((b1, codes + [1]))
                if b2:
                    out.append((b2, codes + [2]))
            items = out
        table: Dict[int, Tuple[int, ...]] = {}
        for mask, codes in items:
            vector = tuple(codes)
            while mask:
                low = mask & -mask
                table[low.bit_length() - 1] = vector
                mask ^= low
        return table

    def _summary_mask(self) -> int:
        mask = 0
        for node, is_summary in self.summary.items():
            if is_summary:
                mask |= 1 << node
        return mask

    def _renumbered(self, order: List[int]) -> "PackedStructure":
        """Rebuild with node ``i`` = old ``order[i]`` (minimal stride).

        Remapping runs through byte-chunk translation tables shared by
        every plane: ~60 preds reuse one 256-entry table per old byte
        of universe, so the per-plane cost is a handful of list indexes
        instead of a per-set-bit Python loop.
        """
        result = PackedStructure()
        summary = self.summary
        for old in order:
            result.new_node(summary[old])
        result.nullary = dict(self.nullary)
        index: Dict[int, int] = {old: i for i, old in enumerate(order)}
        tables: List[List[int]] = []
        base = 0
        max_old = order and max(order) or 0
        while base <= max_old:
            tbl = [0] * 256
            for v in range(1, 256):
                low = v & -v
                tbl[v] = tbl[v ^ low] | (
                    1 << index[base + low.bit_length() - 1]
                    if base + low.bit_length() - 1 in index
                    else 0
                )
            tables.append(tbl)
            base += 8

        def remap(plane: int) -> int:
            out = 0
            c = 0
            while plane:
                byte = plane & 255
                if byte:
                    out |= tables[c][byte]
                plane >>= 8
                c += 1
            return out

        for src, dst in ((self.u_t, result.u_t), (self.u_h, result.u_h)):
            for pred, plane in src.items():
                if plane:
                    dst[pred] = remap(plane)
        if self.b_t or self.b_h:
            old_shift = self._shift
            new_shift = result._shift
            row_bits = (1 << self._width) - 1
            rows = self.nodes
            for src, dst in ((self.b_t, result.b_t), (self.b_h, result.b_h)):
                for pred, plane in src.items():
                    if not plane:
                        continue
                    out = 0
                    for r in rows:
                        row = (plane >> (r << old_shift)) & row_bits
                        if row:
                            out |= remap(row) << (index[r] << new_shift)
                    if out:
                        dst[pred] = out
        return result

    def canonicalize(
        self, abstraction_preds: List[str]
    ) -> "PackedStructure":
        """Merge individuals with identical abstraction vectors.

        Grouping is partition refinement over the unary planes
        (:meth:`_node_blocks`); folding works plane-at-a-time: a merged
        block's value is 1 iff the block mask is contained in the true
        plane, 0 iff it misses both planes, 1/2 otherwise — the
        implicit-0 accounting of the dict version falls out of the mask
        containment test.

        The result is always *vector-ordered* — node ids 0..k-1 follow
        the abstraction-vector sort — so :meth:`_canonical_key` takes
        its identity fast path on every engine-produced structure.
        Merged results come out ordered by construction (blocks are
        emitted in refinement order); an unmerged structure whose
        historical numbering drifted from vector order is renumbered
        once here instead of being re-permuted on every key build.
        """
        member_mask = self._node_blocks(abstraction_preds)
        if len(member_mask) == len(self.nodes):
            # every vector distinct: already canonical up to numbering
            if self._vec_ordered is not None and self._vec_ordered == tuple(
                abstraction_preds
            ):
                return self
            identity = True
            for i, mask in enumerate(member_mask):
                if mask != (1 << i):
                    identity = False
                    break
            if identity:
                self._vec_ordered = tuple(abstraction_preds)
                return self
            renamed = self._renumbered(
                [mask.bit_length() - 1 for mask in member_mask]
            )
            renamed._vec_ordered = tuple(abstraction_preds)
            return renamed
        result = PackedStructure()
        summary_mask = self._summary_mask()
        for mask in member_mask:
            merged_summary = bool(mask & (mask - 1)) or bool(
                mask & summary_mask
            )
            result.new_node(merged_summary)
        result.nullary = dict(self.nullary)
        k = len(member_mask)
        for pred in self.u_t.keys() | self.u_h.keys():
            t = self.u_t.get(pred, 0)
            h = self.u_h.get(pred, 0)
            if not (t | h):
                continue
            new_t = 0
            new_h = 0
            both = t | h
            for new in range(k):
                mask = member_mask[new]
                if t & mask == mask:
                    new_t |= 1 << new
                elif both & mask:
                    new_h |= 1 << new
            if new_t:
                result.u_t[pred] = new_t
            if new_h:
                result.u_h[pred] = new_h
        if self.b_t or self.b_h:
            # pair block masks in *this* structure's stride
            shift = self._shift
            row_offsets: List[List[int]] = []
            for new in range(k):
                offsets = []
                mask = member_mask[new]
                while mask:
                    low = mask & -mask
                    offsets.append((low.bit_length() - 1) << shift)
                    mask ^= low
                row_offsets.append(offsets)
            new_shift = result._shift
            for pred in self.b_t.keys() | self.b_h.keys():
                t = self.b_t.get(pred, 0)
                h = self.b_h.get(pred, 0)
                if not (t | h):
                    continue
                both = t | h
                new_t = 0
                new_h = 0
                for g1 in range(k):
                    offsets = row_offsets[g1]
                    for g2 in range(k):
                        cols = member_mask[g2]
                        pm = 0
                        for offset in offsets:
                            pm |= cols << offset
                        if not (both & pm):
                            continue
                        pos = 1 << ((g1 << new_shift) | g2)
                        if t & pm == pm:
                            new_t |= pos
                        else:
                            new_h |= pos
                if new_t:
                    result.b_t[pred] = new_t
                if new_h:
                    result.b_h[pred] = new_h
        # blocks come out of the refinement in vector order and every
        # block folds to one node, so the result is vector-ordered
        result._vec_ordered = tuple(abstraction_preds)
        return result

    # -- canonical naming / comparison -------------------------------------------

    def _canonical_key(self, abstraction_preds: List[str]):
        """Integer-plane canonical key (cheap to build and to hash).

        Packed keys are only ever compared with packed keys — the engine
        picks one representation per run — so the shape differs from the
        dict key on purpose: remapped plane ints instead of frozensets.
        """
        if self._vec_ordered is not None and self._vec_ordered == tuple(
            abstraction_preds
        ):
            # canonicalize() already renumbered into vector order: the
            # plane dicts ARE the key — no blocks walk, no remap, just
            # a C-level sort of each plane dict's items
            nullary_part = tuple(
                sorted(
                    (pred, value._value_)
                    for pred, value in self.nullary.items()
                    if value is not FALSE3
                )
            )
            summary_bits = 0
            for node, is_summary in self.summary.items():
                if is_summary:
                    summary_bits |= 1 << node
            return PackedKey(
                (
                    nullary_part,
                    tuple(sorted([i for i in self.u_t.items() if i[1]])),
                    tuple(sorted([i for i in self.u_h.items() if i[1]])),
                    tuple(sorted([i for i in self.b_t.items() if i[1]])),
                    tuple(sorted([i for i in self.b_h.items() if i[1]])),
                    summary_bits,
                    len(self.nodes),
                )
            )
        # block order = vector order; within a block (equal vectors)
        # non-summary nodes sort before summary ones, ties keep
        # ascending node ids — the same total order as the dict path's
        # stable sort on (canonical_vector, summary)
        order: List[int] = []
        summary = self.summary
        for mask in self._node_blocks(abstraction_preds):
            if mask & (mask - 1):
                members: List[int] = []
                while mask:
                    low = mask & -mask
                    members.append(low.bit_length() - 1)
                    mask ^= low
                order.extend(n for n in members if not summary[n])
                order.extend(n for n in members if summary[n])
            else:
                order.append(mask.bit_length() - 1)
        k = len(order)
        identity = True
        for i, node in enumerate(order):
            if i != node:
                identity = False
                break
        nullary_part = tuple(
            sorted(
                (pred, value._value_)
                for pred, value in self.nullary.items()
                if value is not FALSE3
            )
        )
        if identity:
            summary_bits = 0
            for node, is_summary in self.summary.items():
                if is_summary:
                    summary_bits |= 1 << node
            return PackedKey(
                (
                    nullary_part,
                    tuple(sorted([i for i in self.u_t.items() if i[1]])),
                    tuple(sorted([i for i in self.u_h.items() if i[1]])),
                    tuple(sorted([i for i in self.b_t.items() if i[1]])),
                    tuple(sorted([i for i in self.b_h.items() if i[1]])),
                    summary_bits,
                    k,
                )
            )

        # renamed case: re-encode planes in the *native* stride (node
        # strides are a deterministic function of the universe size, so
        # equal-content structures agree on the encoding either way)
        index = {node: i for i, node in enumerate(order)}
        shift = self._shift
        width_mask = self._width - 1

        def remap_unary(plane: int) -> int:
            out = 0
            while plane:
                low = plane & -plane
                out |= 1 << index[low.bit_length() - 1]
                plane ^= low
            return out

        def remap_binary(plane: int) -> int:
            out = 0
            while plane:
                low = plane & -plane
                pos = low.bit_length() - 1
                out |= 1 << (
                    (index[pos >> shift] << shift) | index[pos & width_mask]
                )
                plane ^= low
            return out

        summary_bits = 0
        for node, is_summary in self.summary.items():
            if is_summary:
                summary_bits |= 1 << index[node]
        return PackedKey(
            (
                nullary_part,
                tuple(
                    sorted(
                        [(p, remap_unary(v)) for p, v in self.u_t.items() if v]
                    )
                ),
                tuple(
                    sorted(
                        [(p, remap_unary(v)) for p, v in self.u_h.items() if v]
                    )
                ),
                tuple(
                    sorted(
                        [(p, remap_binary(v)) for p, v in self.b_t.items() if v]
                    )
                ),
                tuple(
                    sorted(
                        [(p, remap_binary(v)) for p, v in self.b_h.items() if v]
                    )
                ),
                summary_bits,
                k,
            )
        )

    # -- node bifurcation (focus) --------------------------------------------------

    def duplicate_node(self, node: int) -> int:
        """Bifurcate a summary node: the clone inherits every predicate
        value (including pairs with the original and itself)."""
        clone = self.new_node(summary=True)  # owns + grows width if needed
        node_bit = 1 << node
        clone_bit = 1 << clone
        for planes in (self.u_t, self.u_h):
            for pred, plane in planes.items():
                if plane & node_bit:
                    planes[pred] = plane | clone_bit
        shift = self._shift
        width = self._width
        full_row = (1 << width) - 1
        node_row = node << shift
        clone_row = clone << shift
        for planes in (self.b_t, self.b_h):
            for pred, plane in planes.items():
                if not plane:
                    continue
                # clone's row := node's row (covers (clone, n2) incl. n2=node)
                row = (plane >> node_row) & full_row
                if row:
                    plane |= row << clone_row
                # clone's column := node's column (covers (n1, clone) incl.
                # n1=node and, via the row bit just written, (clone, clone))
                for n1 in self.nodes:
                    if plane & (1 << ((n1 << shift) | node)):
                        plane |= 1 << ((n1 << shift) | clone)
                planes[pred] = plane
        return clone

    # -- join (independent-attribute mode) -----------------------------------------

    @staticmethod
    def join(
        a: "PackedStructure",
        b: "PackedStructure",
        abstraction_preds: List[str],
    ) -> "PackedStructure":
        """Information-order join, mirroring the dict algorithm: nodes
        with equal abstraction vectors merge; unmatched nodes are kept."""
        result = PackedStructure()
        mapping_a: Dict[int, int] = {}
        mapping_b: Dict[int, int] = {}
        vectors_a = a._vector_table(abstraction_preds)
        vectors_b = b._vector_table(abstraction_preds)
        by_vector_b: Dict[Tuple[int, ...], int] = {}
        for n, vector in vectors_b.items():
            by_vector_b.setdefault(vector, n)
        matched_b = set()
        for n, vector in sorted(
            vectors_a.items(), key=lambda kv: kv[1]
        ):
            partner = by_vector_b.get(vector)
            if partner is not None and partner not in matched_b:
                matched_b.add(partner)
                new = result.new_node(a.summary[n] or b.summary[partner])
                mapping_a[n] = new
                mapping_b[partner] = new
            else:
                new = result.new_node(a.summary[n])
                mapping_a[n] = new
        for n in b.nodes:
            if n not in mapping_b:
                mapping_b[n] = result.new_node(b.summary[n])
        inverse_a = {new: old for old, new in mapping_a.items()}
        inverse_b = {new: old for old, new in mapping_b.items()}
        for pred in a.nullary.keys() | b.nullary.keys():
            value = a.nullary.get(pred, FALSE3).join(
                b.nullary.get(pred, FALSE3)
            )
            if value is not FALSE3:
                result.nullary[pred] = value
        for pred in a.u_t.keys() | a.u_h.keys() | b.u_t.keys() | b.u_h.keys():
            for node in result.nodes:
                values = []
                if node in inverse_a:
                    values.append(a.get(pred, (inverse_a[node],)))
                if node in inverse_b:
                    values.append(b.get(pred, (inverse_b[node],)))
                value = values[0]
                for other in values[1:]:
                    value = value.join(other)
                if value is not FALSE3:
                    result.set(pred, (node,), value)
        for pred in a.b_t.keys() | a.b_h.keys() | b.b_t.keys() | b.b_h.keys():
            for n1 in result.nodes:
                for n2 in result.nodes:
                    values = []
                    if n1 in inverse_a and n2 in inverse_a:
                        values.append(
                            a.get(pred, (inverse_a[n1], inverse_a[n2]))
                        )
                    if n1 in inverse_b and n2 in inverse_b:
                        values.append(
                            b.get(pred, (inverse_b[n1], inverse_b[n2]))
                        )
                    if values:
                        value = values[0]
                        for other in values[1:]:
                            value = value.join(other)
                        if value is not FALSE3:
                            result.set(pred, (n1, n2), value)
        return result

    # -- conversion ----------------------------------------------------------------

    @classmethod
    def from_dense(cls, structure: ThreeValuedStructure) -> "PackedStructure":
        """Pack a dict-backed structure (node ids renumbered densely)."""
        packed = cls()
        mapping: Dict[int, int] = {}
        for node in structure.nodes:
            mapping[node] = packed.new_node(structure.summary[node])
        packed.nullary = {
            pred: value
            for pred, value in structure.nullary.items()
            if value is not FALSE3
        }
        for pred, table in structure.unary.items():
            for node, value in table.items():
                if value is not FALSE3:
                    packed.set(pred, (mapping[node],), value)
        for pred, table2 in structure.binary.items():
            for (n1, n2), value in table2.items():
                if value is not FALSE3:
                    packed.set(pred, (mapping[n1], mapping[n2]), value)
        return packed


# -- packed compiled formulas ------------------------------------------------------

#: a packed atom recognized by the quantifier mask fast path:
#: ``(structure, env) -> (true_mask, may_mask)`` over the binder's bit
#: positions (may_mask includes true_mask)


def _mask_literal(body: Formula, binder: str, slot_of: Dict[str, int]):
    """Compile a quantifier body literal to a whole-universe mask reader.

    Returns ``None`` when the body isn't expressible as plane algebra
    (the generic per-node loop handles it).  Supported shapes, possibly
    under one negation: a unary atom on the binder, or a binary atom
    with the binder in the *second* position and an outer variable first
    (a row extract)."""
    negated = False
    if isinstance(body, Not):
        negated = True
        body = body.body
    if not isinstance(body, PredAtom):
        return None
    if len(body.args) == 1 and body.args[0] == binder:
        name = body.name

        def read_unary(S, env, name=name):
            t = S.u_t.get(name, 0)
            return t, t | S.u_h.get(name, 0)

        reader = read_unary
    elif (
        len(body.args) == 2
        and body.args[1] == binder
        and body.args[0] != binder
        and body.args[0] in slot_of
    ):
        name = body.name
        row_slot = slot_of[body.args[0]]

        def read_row(S, env, name=name, row_slot=row_slot):
            off = env[row_slot] << S._shift
            wm = (1 << S._width) - 1
            t = (S.b_t.get(name, 0) >> off) & wm
            return t, t | ((S.b_h.get(name, 0) >> off) & wm)

        reader = read_row
    else:
        return None
    if not negated:
        return reader

    def read_negated(S, env, reader=reader):
        t, m = reader(S, env)
        u = S.universe_mask
        return u & ~m, u & ~t

    return read_negated


def _compile_quantifier_masks(
    formula: Formula, slot_of: Dict[str, int]
):
    """Mask-algebra fast path for ``Exists``/``Forall`` bodies that are
    (conjunctions of) plane-expressible literals; ``None`` otherwise."""
    binder = formula.var
    body = formula.body
    literals = body.args if isinstance(body, And) else (body,)
    readers = []
    for literal in literals:
        reader = _mask_literal(literal, binder, slot_of)
        if reader is None:
            return None
        readers.append(reader)
    readers = tuple(readers)
    if isinstance(formula, Exists):

        def eval_exists_masks(S, env, readers=readers):
            true_mask = may_mask = S.universe_mask
            for reader in readers:
                t, m = reader(S, env)
                true_mask &= t
                may_mask &= m
                if not may_mask:
                    return FALSE3
            if true_mask:
                return TRUE3
            return HALF if may_mask else FALSE3

        return eval_exists_masks

    def eval_forall_masks(S, env, readers=readers):
        u = S.universe_mask
        true_mask = may_mask = u
        for reader in readers:
            t, m = reader(S, env)
            true_mask &= t
            may_mask &= m
        if true_mask == u:
            return TRUE3
        if may_mask != u:
            return FALSE3
        return HALF

    return eval_forall_masks


def _compile_packed_node(
    formula: Formula, slot_of: Dict[str, int], high_water: List[int]
):
    if isinstance(formula, Truth):
        constant = TRUE3 if formula.value else FALSE3

        def eval_truth(S, env, constant=constant):
            return constant

        return eval_truth

    if isinstance(formula, PredAtom):
        name = formula.name
        try:
            slots = tuple(slot_of[a] for a in formula.args)
        except KeyError as missing:
            raise CompileError(
                f"unbound variable {missing} in {formula}"
            ) from None
        if not slots:

            def eval_nullary(S, env, name=name):
                return S.nullary.get(name, FALSE3)

            return eval_nullary
        if len(slots) == 1:
            slot = slots[0]

            def eval_unary(S, env, name=name, slot=slot):
                bit = 1 << env[slot]
                if S.u_t.get(name, 0) & bit:
                    return TRUE3
                if S.u_h.get(name, 0) & bit:
                    return HALF
                return FALSE3

            return eval_unary
        if len(slots) == 2:
            i, j = slots

            def eval_binary(S, env, name=name, i=i, j=j):
                bit = 1 << ((env[i] << S._shift) | env[j])
                if S.b_t.get(name, 0) & bit:
                    return TRUE3
                if S.b_h.get(name, 0) & bit:
                    return HALF
                return FALSE3

            return eval_binary
        raise CompileError(f"unsupported predicate arity in {formula}")

    if isinstance(formula, EqAtom):
        if not isinstance(formula.lhs, Base) or not isinstance(
            formula.rhs, Base
        ):
            raise CompileError(
                f"3-valued equality supports logical variables only; "
                f"got {formula}"
            )
        try:
            i = slot_of[formula.lhs.name]
            j = slot_of[formula.rhs.name]
        except KeyError as missing:
            raise CompileError(
                f"unbound variable {missing} in {formula}"
            ) from None

        def eval_eq(S, env, i=i, j=j):
            lhs = env[i]
            if lhs != env[j]:
                return FALSE3
            return HALF if S.summary.get(lhs, False) else TRUE3

        return eval_eq

    if isinstance(formula, Not):
        body = _compile_packed_node(formula.body, slot_of, high_water)

        def eval_not(S, env, body=body):
            return body(S, env).logical_not()

        return eval_not

    if isinstance(formula, And):
        parts = tuple(
            _compile_packed_node(a, slot_of, high_water)
            for a in formula.args
        )

        def eval_and(S, env, parts=parts):
            result = TRUE3
            for part in parts:
                value = part(S, env)
                if value is FALSE3:
                    return FALSE3
                if value is HALF:
                    result = HALF
            return result

        return eval_and

    if isinstance(formula, Or):
        parts = tuple(
            _compile_packed_node(a, slot_of, high_water)
            for a in formula.args
        )

        def eval_or(S, env, parts=parts):
            result = FALSE3
            for part in parts:
                value = part(S, env)
                if value is TRUE3:
                    return TRUE3
                if value is HALF:
                    result = HALF
            return result

        return eval_or

    if isinstance(formula, (Exists, Forall)):
        fast = _compile_quantifier_masks(formula, slot_of)
        if fast is not None:
            # the binder never materializes: no slot, no per-node loop
            return fast
        saved = slot_of.get(formula.var)
        slot = max(len(slot_of), high_water[0])
        slot_of[formula.var] = slot
        high_water[0] = max(high_water[0], slot + 1)
        body = _compile_packed_node(formula.body, slot_of, high_water)
        if saved is None:
            del slot_of[formula.var]
        else:
            slot_of[formula.var] = saved
        if isinstance(formula, Exists):

            def eval_exists(S, env, body=body, slot=slot):
                result = FALSE3
                for node in S.nodes:
                    env[slot] = node
                    value = body(S, env)
                    if value is TRUE3:
                        return TRUE3
                    if value is HALF:
                        result = HALF
                return result

            return eval_exists

        def eval_forall(S, env, body=body, slot=slot):
            result = TRUE3
            for node in S.nodes:
                env[slot] = node
                value = body(S, env)
                if value is FALSE3:
                    return FALSE3
                if value is HALF:
                    result = HALF
            return result

        return eval_forall

    raise CompileError(f"unknown formula node {formula!r}")


_MISSING = object()

#: packed-evaluator caches, mirroring repro.logic.compile's two levels
_PACKED_COMPILED: Dict[Formula, Optional[CompiledFormula]] = {}
_PACKED_BY_ID: Dict[int, Tuple[Formula, Optional[CompiledFormula]]] = {}


def compile_packed_formula(formula: Formula) -> Optional[CompiledFormula]:
    """Compile (and cache) a formula against the bit-plane layout;
    ``None`` if it is not compilable (callers fall back to ``_eval``)."""
    entry = _PACKED_BY_ID.get(id(formula))
    if entry is not None and entry[0] is formula:
        return entry[1]
    canonical = intern(formula)
    compiled = _PACKED_COMPILED.get(canonical, _MISSING)
    if compiled is _MISSING:
        free = _free_vars_ordered(canonical)
        slot_of = {name: index for index, name in enumerate(free)}
        high_water = [len(free)]
        try:
            fn = _compile_packed_node(canonical, slot_of, high_water)
        except CompileError:
            compiled = None
        else:
            compiled = CompiledFormula(canonical, free, high_water[0], fn)
        _PACKED_COMPILED[canonical] = compiled
    _PACKED_BY_ID[id(formula)] = (formula, compiled)
    return compiled


def evaluate_packed(
    structure, formula: Formula, env: Optional[Dict[str, int]] = None
) -> Kleene:
    """Evaluate on a packed structure via the plane-compiled path,
    falling back to the inherited interpreter for rejected formulas."""
    compiled = compile_packed_formula(formula)
    if compiled is None:
        return structure._eval(formula, env or {})
    return compiled(structure, env)


# -- plane-wide update evaluation ----------------------------------------------
#
# An update ``p(v...) := rhs`` is evaluated by the engine once per node
# tuple: ``n**arity`` compiled-closure calls per transfer.  For packed
# structures the whole valuation can instead be computed as plane
# algebra: every subformula evaluates to a ``(true_mask, may_mask)``
# pair over the update variables' domain — node bits for one free
# variable, pair bits (row ``v1``, column ``v2`` in the structure's
# stride) for two — and connectives become word-parallel AND/OR/NOT.
# Quantifiers nested under a two-variable update (three live logical
# variables) are not expressible in two planes; compilation fails and
# the engine falls back to the per-tuple path.


class PlaneCompiled:
    """A formula compiled to whole-plane evaluation over update vars.

    ``fn(structure, slots) -> (t_plane, may_plane)``; slots carry the
    outer environment exactly like :class:`CompiledFormula` (positions
    of the update variables are never read).
    """

    __slots__ = ("formula", "free_vars", "num_slots", "fn", "arity")

    def __init__(self, formula, free_vars, num_slots, fn, arity):
        self.formula = formula
        self.free_vars = free_vars
        self.num_slots = num_slots
        self.fn = fn
        self.arity = arity


#: memoized evaluation contexts keyed by (shift, universe_mask) — the
#: engine revisits the same few universes thousands of times per run
_PLANE_CTX_CACHE: Dict[Tuple[int, int], Tuple[int, int, int, int]] = {}


def _plane_ctx(S) -> Tuple[int, int, int, int]:
    """Per-structure evaluation context: ``(shift, nodes_mask,
    row_replicator, pairs_mask)``.

    ``row_replicator`` has one bit at each valid row offset — because
    row offsets are multiples of the stride and node masks are narrower
    than it, ``mask * row_replicator`` replicates a column mask into
    every row without carries (O(1) broadcast).
    """
    shift = S._shift
    nodes = S.universe_mask
    ctx = _PLANE_CTX_CACHE.get((shift, nodes))
    if ctx is not None:
        return ctx
    if len(_PLANE_CTX_CACHE) > 4096:
        _PLANE_CTX_CACHE.clear()
    rowrep = 0
    m = nodes
    while m:
        low = m & -m
        rowrep |= 1 << ((low.bit_length() - 1) << shift)
        m ^= low
    ctx = (shift, nodes, rowrep, nodes * rowrep)
    _PLANE_CTX_CACHE[(shift, nodes)] = ctx
    return ctx


def _spread_rows(mask: int, shift: int, cols: int) -> int:
    """Broadcast a node mask over rows: bit ``n`` becomes row ``n``
    filled with ``cols`` (the ``P(v1)`` direction)."""
    out = 0
    while mask:
        low = mask & -mask
        out |= cols << ((low.bit_length() - 1) << shift)
        mask ^= low
    return out


def _transpose(plane: int, shift: int, width_mask: int) -> int:
    """Swap rows and columns of a pair plane (the ``q(v2, v1)`` atom)."""
    out = 0
    while plane:
        low = plane & -plane
        pos = low.bit_length() - 1
        out |= 1 << (((pos & width_mask) << shift) | (pos >> shift))
        plane ^= low
    return out


def _unary_planes_over(
    reader, direction: str
):
    """Lift a node-mask reader ``(S, slots, ctx) -> (t, u)`` over nodes
    into the pair domain along ``direction`` ('row' = the mask indexes
    v1, 'col' = it indexes v2)."""
    if direction == "row":

        def lifted_row(S, slots, ctx, reader=reader):
            t, u = reader(S, slots, ctx)
            shift, nodes = ctx[0], ctx[1]
            return (
                _spread_rows(t, shift, nodes),
                _spread_rows(u, shift, nodes),
            )

        return lifted_row

    def lifted_col(S, slots, ctx, reader=reader):
        t, u = reader(S, slots, ctx)
        rowrep = ctx[2]
        return t * rowrep, u * rowrep

    return lifted_col


def _node_mask_atom(name: str, kind: str, slot: Optional[int] = None):
    """Node-mask readers for predicate atoms viewed along one variable:

    * ``unary``   — ``p(v)``: the unary planes themselves
    * ``row``     — ``q(c, v)``: extract row ``c`` (O(1) shift+mask)
    * ``col``     — ``q(v, c)``: gather column ``c`` (O(nodes))
    * ``diag``    — ``q(v, v)``: gather the diagonal (O(nodes))
    """
    if kind == "unary":

        def read_unary(S, slots, ctx, name=name):
            t = S.u_t.get(name, 0)
            return t, t | S.u_h.get(name, 0)

        return read_unary
    if kind == "row":

        def read_row(S, slots, ctx, name=name, slot=slot):
            shift, nodes = ctx[0], ctx[1]
            off = slots[slot] << shift
            t = (S.b_t.get(name, 0) >> off) & nodes
            return t, t | ((S.b_h.get(name, 0) >> off) & nodes)

        return read_row
    if kind == "col":

        def read_col(S, slots, ctx, name=name, slot=slot):
            shift, nodes = ctx[0], ctx[1]
            col = 1 << slots[slot]
            bt = S.b_t.get(name, 0)
            bh = S.b_h.get(name, 0)
            t = u = 0
            m = nodes
            while m:
                low = m & -m
                off = (low.bit_length() - 1) << shift
                if (bt >> off) & col:
                    t |= low
                    u |= low
                elif (bh >> off) & col:
                    u |= low
                m ^= low
            return t, u

        return read_col

    def read_diag(S, slots, ctx, name=name):
        shift, nodes = ctx[0], ctx[1]
        bt = S.b_t.get(name, 0)
        bh = S.b_h.get(name, 0)
        t = u = 0
        m = nodes
        while m:
            low = m & -m
            n = low.bit_length() - 1
            pos = 1 << ((n << shift) | n)
            if bt & pos:
                t |= low
                u |= low
            elif bh & pos:
                u |= low
            m ^= low
        return t, u

    return read_diag


def _eq_node_mask(slot: Optional[int]):
    """``v == c`` as a node mask: the single bit at ``c``, definite
    unless ``c`` is a summary node; ``v == v`` (slot None) is every
    node, definite except summaries."""
    if slot is None:

        def read_eq_self(S, slots, ctx):
            nodes = ctx[1]
            return nodes & ~S._summary_mask(), nodes

        return read_eq_self

    def read_eq_const(S, slots, ctx, slot=slot):
        bit = 1 << slots[slot]
        if S.summary.get(slots[slot], False):
            return 0, bit
        return bit, bit

    return read_eq_const


def _compile_plane_pred(
    formula: PredAtom, dom: Tuple[str, ...], slot_of: Dict[str, int]
):
    name = formula.name
    args = formula.args
    domset = set(dom)

    def env_slot(var: str) -> int:
        try:
            return slot_of[var]
        except KeyError:
            raise CompileError(
                f"unbound variable {var!r} in {formula}"
            ) from None

    if len(dom) == 1:
        v = dom[0]
        if len(args) == 1:  # args == (v,): scalar case was caught upstream
            return _node_mask_atom(name, "unary")
        if len(args) == 2:
            a, b = args
            if a == v and b == v:
                return _node_mask_atom(name, "diag")
            if b == v:  # q(c, v): row extract
                return _node_mask_atom(name, "row", env_slot(a))
            # q(v, c): column gather
            return _node_mask_atom(name, "col", env_slot(b))
        raise CompileError(f"unsupported predicate arity in {formula}")

    v1, v2 = dom
    if len(args) == 1:
        a = args[0]
        direction = "row" if a == v1 else "col"
        return _unary_planes_over(
            _node_mask_atom(name, "unary"), direction
        )
    if len(args) == 2:
        a, b = args
        if a == v1 and b == v2:

            def read_pairs(S, slots, ctx, name=name):
                t = S.b_t.get(name, 0)
                return t, t | S.b_h.get(name, 0)

            return read_pairs
        if a == v2 and b == v1:

            def read_pairs_T(S, slots, ctx, name=name):
                shift = ctx[0]
                wm = S._width - 1
                t = _transpose(S.b_t.get(name, 0), shift, wm)
                h = _transpose(S.b_h.get(name, 0), shift, wm)
                return t, t | h

            return read_pairs_T
        # one domain variable + one constant / repeated domain variable:
        # read a node mask along that variable, then lift it
        if a in domset and b in domset:  # (v1, v1) or (v2, v2)
            reader = _node_mask_atom(name, "diag")
            direction = "row" if a == v1 else "col"
        elif a in domset:  # q(v, c)
            reader = _node_mask_atom(name, "col", env_slot(b))
            direction = "row" if a == v1 else "col"
        else:  # q(c, v)
            reader = _node_mask_atom(name, "row", env_slot(a))
            direction = "row" if b == v1 else "col"
        return _unary_planes_over(reader, direction)
    raise CompileError(f"unsupported predicate arity in {formula}")


def _compile_plane_eq(
    formula: EqAtom, dom: Tuple[str, ...], slot_of: Dict[str, int]
):
    if not isinstance(formula.lhs, Base) or not isinstance(
        formula.rhs, Base
    ):
        raise CompileError(
            f"3-valued equality supports logical variables only; "
            f"got {formula}"
        )
    lhs = formula.lhs.name
    rhs = formula.rhs.name
    domset = set(dom)
    if len(dom) == 1:
        v = dom[0]
        if lhs == v and rhs == v:
            return _eq_node_mask(None)
        other = rhs if lhs == v else lhs
        try:
            return _eq_node_mask(slot_of[other])
        except KeyError:
            raise CompileError(
                f"unbound variable {other!r} in {formula}"
            ) from None
    v1, v2 = dom
    if {lhs, rhs} == {v1, v2}:

        def read_eq_diag(S, slots, ctx):
            shift, nodes = ctx[0], ctx[1]
            sm = S._summary_mask()
            t = u = 0
            m = nodes
            while m:
                low = m & -m
                pos = 1 << (((low.bit_length() - 1) << shift)
                            | (low.bit_length() - 1))
                u |= pos
                if not (sm & low):
                    t |= pos
                m ^= low
            return t, u

        return read_eq_diag
    if lhs in domset and rhs in domset:  # v == v (same variable twice)
        direction = "row" if lhs == v1 else "col"
        return _unary_planes_over(_eq_node_mask(None), direction)
    var = lhs if lhs in domset else rhs
    other = rhs if lhs in domset else lhs
    try:
        slot = slot_of[other]
    except KeyError:
        raise CompileError(
            f"unbound variable {other!r} in {formula}"
        ) from None
    direction = "row" if var == v1 else "col"
    return _unary_planes_over(_eq_node_mask(slot), direction)


def _compile_plane_node(
    formula: Formula,
    dom: Tuple[str, ...],
    slot_of: Dict[str, int],
    high_water: List[int],
):
    domain_sel = 1 if len(dom) == 1 else 3  # ctx index of the domain mask
    if not (set(_free_vars_ordered(formula)) & set(dom)):
        # no update variable occurs: evaluate once with the scalar
        # compiler (mask fast paths included) and broadcast the value
        scalar = _compile_packed_node(formula, slot_of, high_water)

        def eval_broadcast(
            S, slots, ctx, scalar=scalar, sel=domain_sel
        ):
            value = scalar(S, slots)
            if value is TRUE3:
                d = ctx[sel]
                return d, d
            if value is HALF:
                return 0, ctx[sel]
            return 0, 0

        return eval_broadcast

    if isinstance(formula, PredAtom):
        return _compile_plane_pred(formula, dom, slot_of)

    if isinstance(formula, EqAtom):
        return _compile_plane_eq(formula, dom, slot_of)

    if isinstance(formula, Not):
        body = _compile_plane_node(formula.body, dom, slot_of, high_water)

        def eval_not(S, slots, ctx, body=body, sel=domain_sel):
            t, u = body(S, slots, ctx)
            d = ctx[sel]
            return d & ~u, d & ~t

        return eval_not

    if isinstance(formula, And):
        parts = tuple(
            _compile_plane_node(a, dom, slot_of, high_water)
            for a in formula.args
        )

        def eval_and(S, slots, ctx, parts=parts, sel=domain_sel):
            t = u = ctx[sel]
            for part in parts:
                pt, pu = part(S, slots, ctx)
                t &= pt
                u &= pu
                if not u:
                    return 0, 0
            return t, u

        return eval_and

    if isinstance(formula, Or):
        parts = tuple(
            _compile_plane_node(a, dom, slot_of, high_water)
            for a in formula.args
        )

        def eval_or(S, slots, ctx, parts=parts):
            t = u = 0
            for part in parts:
                pt, pu = part(S, slots, ctx)
                t |= pt
                u |= pu
            return t, u

        return eval_or

    if isinstance(formula, (Exists, Forall)):
        if len(dom) == 2:
            raise CompileError(
                f"three live logical variables in {formula}: "
                "two planes can't carry a quantifier under a binary "
                "update"
            )
        binder = formula.var
        v = dom[0]
        # binder == v would shadow the update variable, making the
        # quantifier scalar — caught by the broadcast case above
        saved = slot_of.pop(binder, None)
        body = _compile_plane_node(
            formula.body, (v, binder), slot_of, high_water
        )
        if saved is not None:
            slot_of[binder] = saved
        if isinstance(formula, Exists):

            def eval_exists(S, slots, ctx, body=body):
                T, U = body(S, slots, ctx)
                shift, nodes = ctx[0], ctx[1]
                t = u = 0
                m = nodes
                while m:
                    low = m & -m
                    off = (low.bit_length() - 1) << shift
                    if (U >> off) & nodes:
                        u |= low
                        if (T >> off) & nodes:
                            t |= low
                    m ^= low
                return t, u

            return eval_exists

        def eval_forall(S, slots, ctx, body=body):
            T, U = body(S, slots, ctx)
            shift, nodes = ctx[0], ctx[1]
            t = u = 0
            m = nodes
            while m:
                low = m & -m
                off = (low.bit_length() - 1) << shift
                if (U >> off) & nodes == nodes:
                    u |= low
                    if (T >> off) & nodes == nodes:
                        t |= low
                m ^= low
            return t, u

        return eval_forall

    raise CompileError(f"unknown formula node {formula!r}")


#: plane-compiler caches, keyed by (interned formula, update vars)
_PLANE_COMPILED: Dict[tuple, Optional[PlaneCompiled]] = {}
_PLANE_BY_ID: Dict[tuple, Tuple[Formula, Optional[PlaneCompiled]]] = {}


def compile_update_plane(
    formula: Formula, update_vars: Tuple[str, ...]
) -> Optional[PlaneCompiled]:
    """Compile (and cache) an update's rhs to whole-plane evaluation
    over ``update_vars``; ``None`` when the formula needs more live
    variables than two planes can carry (callers use the per-tuple
    compiled path instead)."""
    vars_key = tuple(update_vars)
    if len(vars_key) not in (1, 2) or len(set(vars_key)) != len(vars_key):
        return None
    ident = (id(formula), vars_key)
    entry = _PLANE_BY_ID.get(ident)
    if entry is not None and entry[0] is formula:
        return entry[1]
    canonical = intern(formula)
    key = (canonical, vars_key)
    compiled = _PLANE_COMPILED.get(key, _MISSING)
    if compiled is _MISSING:
        free = _free_vars_ordered(canonical)
        slot_of = {name: index for index, name in enumerate(free)}
        high_water = [len(free)]
        try:
            fn = _compile_plane_node(
                canonical, vars_key, slot_of, high_water
            )
        except CompileError:
            compiled = None
        else:
            compiled = PlaneCompiled(
                canonical, free, high_water[0], fn, len(vars_key)
            )
        _PLANE_COMPILED[key] = compiled
    _PLANE_BY_ID[ident] = (formula, compiled)
    return compiled


def evaluate_update_plane(
    structure, compiled: PlaneCompiled, slots: List[int]
) -> Tuple[int, int]:
    """Run a plane-compiled update rhs: returns disjoint ``(t, h)``
    planes over the update variables' domain."""
    ctx = _plane_ctx(structure)
    t, u = compiled.fn(structure, slots, ctx)
    return t, u & ~t


def packed_cache_stats() -> Dict[str, int]:
    return {
        "compiled": sum(
            1 for v in _PACKED_COMPILED.values() if v is not None
        ),
        "uncompilable": sum(
            1 for v in _PACKED_COMPILED.values() if v is None
        ),
        "by_id": len(_PACKED_BY_ID),
    }


def precompile_tvp(tvp, packed: bool = False) -> int:
    """Compile every formula a TVP's actions will evaluate.

    Called at specialize time so first-certification ("cold") runs do
    not pay compile + interning inside the measured fixpoint; the
    compiled closures live in the process-wide caches, shared by every
    engine constructed over this TVP.  Returns the formula count."""
    compile_one = (
        compile_packed_formula if packed else formula_compile.compile_formula
    )
    count = 0
    for edge in tvp.edges:
        action = edge.action
        for f in action.focus:
            compile_one(f)
            count += 1
        for check in action.checks:
            compile_one(check.cond)
            count += 1
        for update in action.updates:
            compile_one(update.rhs)
            if packed and update.vars:
                compile_update_plane(update.rhs, tuple(update.vars))
            count += 1
    return count
