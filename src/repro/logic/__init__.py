"""First-order logic substrate.

This package provides the logical machinery shared by the whole pipeline:

* :mod:`repro.logic.terms` — ground terms of the *access-path logic* used by
  the abstraction-derivation stage (Section 4 of the paper): named base
  constants (specification free variables, client variables), fresh
  allocation tokens, and field selections.
* :mod:`repro.logic.formula` — a formula AST with smart constructors.
  Atoms come in two flavours: :class:`~repro.logic.formula.EqAtom`
  (equality of access-path terms, used during derivation) and
  :class:`~repro.logic.formula.PredAtom` (first-order predicate
  application, used by the TVP/TVLA layer).
* :mod:`repro.logic.kleene` — Kleene's 3-valued truth domain
  ``{0, 1/2, 1}`` with join/meet, used by the TVLA engine (Section 5.5).
* :mod:`repro.logic.normal` — negation/disjunctive normal forms and the
  Rule 2 disjunct splitting of Section 4.1.
* :mod:`repro.logic.congruence` — congruence closure for ground equality
  logic with unary (field) functions and fresh-token distinctness axioms.
* :mod:`repro.logic.decision` — satisfiability / entailment / equivalence
  decision procedures over the access-path logic, built on DPLL-style atom
  enumeration plus congruence closure. These are the
  "computationally-intensive symbolic techniques" the paper confines to
  certifier-generation time (Section 1.3).
* :mod:`repro.logic.structure` — 2-valued logical structures and formula
  evaluation (Section 5.1's program-state representation).
"""

from repro.logic.formula import (
    FALSE,
    TRUE,
    And,
    EqAtom,
    Exists,
    Forall,
    Formula,
    Not,
    Or,
    PredAtom,
    conj,
    disj,
    eq,
    neg,
    neq,
)
from repro.logic.kleene import FALSE3, HALF, TRUE3, Kleene
from repro.logic.terms import Base, Field, Fresh, Term

__all__ = [
    "And",
    "Base",
    "EqAtom",
    "Exists",
    "FALSE",
    "FALSE3",
    "Field",
    "Forall",
    "Formula",
    "Fresh",
    "HALF",
    "Kleene",
    "Not",
    "Or",
    "PredAtom",
    "Term",
    "TRUE",
    "TRUE3",
    "conj",
    "disj",
    "eq",
    "neg",
    "neq",
]
