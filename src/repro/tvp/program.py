"""The TVP action IR (Section 5.1).

An action consists of:

* ``focus`` — formulas (in one free variable ``v``) the engine should make
  definite before applying the action, by materializing individuals out
  of summary nodes (the TVLA focus operation);
* ``new_var`` — an allocation binding: a fresh individual is added to the
  universe and bound to this logical variable for the updates;
* ``updates`` — simultaneous predicate updates
  ``p(v1 … vk) := φ(v1 … vk)``, evaluated in the pre-state;
* ``checks`` — ``requires φ`` obligations: the action's source state must
  satisfy φ definitely, otherwise an alarm is reported at ``site_id``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.logic.formula import Formula


@dataclass(frozen=True)
class PredicateDecl:
    """A predicate of the TVP program.

    ``abstraction`` marks unary predicates used by canonical abstraction
    (Section 5.5: "TVLA users can control this abstraction process by
    identifying a subset A of unary predicates to be the abstraction
    predicates").
    """

    name: str
    arity: int
    abstraction: bool = False
    #: instances true of a freshly allocated individual (reflexive
    #: instrumentation instances; everything else starts false)
    true_on_new: bool = False


@dataclass(frozen=True)
class Update:
    """``pred(vars) := rhs`` — rhs evaluated in the pre-state."""

    pred: str
    vars: Tuple[str, ...]
    rhs: Formula

    def __str__(self) -> str:
        args = f"({', '.join(self.vars)})" if self.vars else ""
        return f"{self.pred}{args} := {self.rhs}"


@dataclass(frozen=True)
class Check:
    """``requires φ`` at a component call site."""

    site_id: int
    line: int
    op_key: str
    cond: Formula  # must hold definitely, else alarm


@dataclass(frozen=True)
class Action:
    focus: Tuple[Formula, ...] = ()
    new_var: Optional[str] = None
    updates: Tuple[Update, ...] = ()
    checks: Tuple[Check, ...] = ()

    def __str__(self) -> str:
        parts: List[str] = []
        for check in self.checks:
            parts.append(f"requires {check.cond}")
        if self.new_var:
            parts.append(f"let {self.new_var} = new()")
        parts.extend(str(u) for u in self.updates)
        return "; ".join(parts) if parts else "skip"


@dataclass(frozen=True)
class TvpEdge:
    src: int
    dst: int
    action: Action


class TvpProgram:
    """A TVP control-flow graph."""

    def __init__(self, name: str, entry: int, exit_: int) -> None:
        self.name = name
        self.entry = entry
        self.exit = exit_
        self.predicates: Dict[str, PredicateDecl] = {}
        self.edges: List[TvpEdge] = []
        self._out: Dict[int, List[TvpEdge]] = {}

    def declare(self, decl: PredicateDecl) -> None:
        existing = self.predicates.get(decl.name)
        if existing is not None and existing != decl:
            raise ValueError(f"predicate {decl.name} redeclared differently")
        self.predicates[decl.name] = decl

    def add_edge(self, src: int, dst: int, action: Action) -> None:
        edge = TvpEdge(src, dst, action)
        self.edges.append(edge)
        self._out.setdefault(src, []).append(edge)

    def out_edges(self, node: int) -> List[TvpEdge]:
        return self._out.get(node, [])

    def nodes(self) -> List[int]:
        found = {self.entry, self.exit}
        for edge in self.edges:
            found.add(edge.src)
            found.add(edge.dst)
        return sorted(found)

    def abstraction_predicates(self) -> List[str]:
        return [
            d.name
            for d in self.predicates.values()
            if d.arity == 1 and d.abstraction
        ]

    def describe(self) -> str:
        lines = [f"tvp {self.name}"]
        for decl in self.predicates.values():
            mark = "*" if decl.abstraction else ""
            lines.append(f"  pred {decl.name}/{decl.arity}{mark}")
        for edge in self.edges:
            lines.append(f"  {edge.src} --[{edge.action}]--> {edge.dst}")
        return "\n".join(lines)
