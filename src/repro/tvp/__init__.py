"""TVP — the first-order intermediate language of Section 5.

A TVP program is a control-flow graph whose edges carry *actions*:
an optional precondition, optional allocation bindings, and parallel
predicate updates given by first-order formulae (Section 5.1).  Program
states are logical structures; the TVLA engine (:mod:`repro.tvla`)
interprets actions over 3-valued structures.

* :mod:`repro.tvp.program` — the action IR.
* :mod:`repro.tvp.translate` — the *standard translation* of client
  statements (Fig. 9): variables become unary ``pt`` predicates, fields
  binary ``rv`` predicates.
* :mod:`repro.tvp.specialize` — the *specialized translation* (Sections
  5.3–5.4, Figs. 10–11): the derived instrumentation-predicate families
  are instantiated over the client's component-typed variables (nullary
  predicates) and fields (unary/binary predicates over client objects),
  and component operations update them via the derived method
  abstractions.  Component objects then never need to be individuals at
  all — the client-object heap is the whole universe.
"""

from repro.tvp.program import Action, PredicateDecl, TvpProgram
from repro.tvp.specialize import SpecializeError, specialized_translation

__all__ = [
    "Action",
    "PredicateDecl",
    "SpecializeError",
    "TvpProgram",
    "specialized_translation",
]
