"""The standard translation of client programs into TVP (Fig. 9).

Every heap-allocated (client) object is an individual; every reference
variable ``x`` is a unary predicate ``pt[x]``; every reference field ``f``
is a binary predicate ``rv[C.f]``.  The four pointer-manipulation
statements translate exactly as in Fig. 9:

=====================  ==================================================
Java statement          TVP action
=====================  ==================================================
``x = new C()``         ``let n = new() in pt[x](v) := (v == n)``
``x = y``               ``pt[x](v) := pt[y](v)``
``x = y.f``             ``pt[x](v) := ∃o. pt[y](o) ∧ rv[f](o, v)``
``x.f = y``             ``pt[x](o1) ⇒ rv[f](o1, o2) := pt[y](o2)``
=====================  ==================================================

The specialized translation (:mod:`repro.tvp.specialize`) embeds these
rules for the client-object heap; this module exposes the plain version
for tests and for running the TVLA engine as a *generic* client-heap
analysis.
"""

from __future__ import annotations

from repro.lang.cfg import SCopy, SLoad, SNewClient, SNull, SStore
from repro.lang.inline import InlinedProgram
from repro.logic.formula import Exists, FALSE, PredAtom, conj, disj, eq, neg
from repro.logic.terms import Base
from repro.tvp.program import Action, PredicateDecl, TvpProgram, Update


def pt(var: str) -> str:
    return f"pt[{var}]"


def rv(owner: str, field: str) -> str:
    return f"rv[{owner}.{field}]"


def standard_translation(inlined: InlinedProgram) -> TvpProgram:
    """Translate the *client-object* statements of an inlined program.

    Component interactions are not modelled here (use the specialized
    translation); this exists to exercise the Fig. 9 rules on their own.
    """
    program = inlined.program
    cfg = inlined.cfg
    tvp = TvpProgram(f"{cfg.method}<std>", cfg.entry, cfg.exit)
    client_vars = {
        name: type_
        for name, type_ in {**inlined.variables, **program.statics}.items()
        if type_ in program.classes
    }
    for name in client_vars:
        tvp.declare(PredicateDecl(pt(name), 1, abstraction=True))
    for cinfo in program.classes.values():
        for finfo in cinfo.fields.values():
            if not finfo.is_static and finfo.type in program.classes:
                tvp.declare(PredicateDecl(rv(cinfo.name, finfo.name), 2))

    def owner_of(var: str) -> str:
        return client_vars[var]

    for edge in cfg.edges:
        stm = edge.stm
        action = Action()
        if isinstance(stm, SNewClient):
            action = Action(
                new_var="n",
                updates=(
                    Update(pt(stm.dst), ("v",), eq(Base("v"), Base("n"))),
                ),
            )
        elif isinstance(stm, SCopy) and stm.dst in client_vars:
            action = Action(
                updates=(
                    Update(pt(stm.dst), ("v",), PredAtom(pt(stm.src), ("v",))),
                )
            )
        elif isinstance(stm, SNull) and stm.dst in client_vars:
            action = Action(updates=(Update(pt(stm.dst), ("v",), FALSE),))
        elif isinstance(stm, SLoad) and stm.type in program.classes:
            rhs = Exists(
                "o",
                conj(
                    PredAtom(pt(stm.base), ("o",)),
                    PredAtom(rv(owner_of(stm.base), stm.field), ("o", "v")),
                ),
            )
            action = Action(
                focus=(PredAtom(pt(stm.base), ("v",)),),
                updates=(Update(pt(stm.dst), ("v",), rhs),),
            )
        elif isinstance(stm, SStore) and stm.type in program.classes:
            rv_name = rv(owner_of(stm.base), stm.field)
            rhs = disj(
                conj(
                    PredAtom(pt(stm.base), ("v1",)),
                    PredAtom(pt(stm.src), ("v2",)),
                ),
                conj(
                    neg(PredAtom(pt(stm.base), ("v1",))),
                    PredAtom(rv_name, ("v1", "v2")),
                ),
            )
            action = Action(
                focus=(PredAtom(pt(stm.base), ("v",)),),
                updates=(Update(rv_name, ("v1", "v2"), rhs),),
            )
        tvp.add_edge(edge.src, edge.dst, action)
    return tvp
