"""Specialized translation of heap clients (Sections 5.3–5.4).

The derived instrumentation-predicate families are instantiated over
*slots*: a slot is either a component-typed client **variable** (including
statics and compiler temporaries) or a component-typed **instance field**
of a client class.  An instance whose slots are all variables is a nullary
predicate — exactly the SCMP abstraction; each field slot adds one
first-order argument ranging over client-heap objects (Fig. 10's
``stale_f(e)``).  Because every fact about a component reference is
carried by these predicates, component objects never need to be
individuals: the universe of the resulting TVP program is the *client*
object heap only, modelled by the standard translation (Fig. 9's ``pt``
and ``rv`` predicates).

Edge-by-edge:

* component operations and reference copies instantiate the derived
  method abstractions (Fig. 11), selecting update cases by the
  coincidence pattern of each instance's variable slots against the
  operation's operands — field slots are always "generic" positions;
* ``x = y.f`` (component-typed load) rebinds every instance mentioning
  ``x`` from the corresponding field-slot instance at ``y``'s object:
  ``stale_x := ∃o. pt_y(o) ∧ stale_f(o)``;
* ``y.f = x`` (component-typed store) updates every instance mentioning
  the field slot ``f`` with a case split on whether each tuple component
  is ``y``'s object;
* client-typed statements get the standard translation.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple, Union

from repro.derivation.predicates import (
    DerivedAbstraction,
    GenArg,
    OpArg,
    instance_pattern,
)
from repro.certifier.transform import reflexively_true
from repro.lang.cfg import (
    SAssume,
    SCallComp,
    SCopy,
    SLoad,
    SNewClient,
    SNop,
    SNull,
    SReturn,
    SStore,
)
from repro.lang.inline import InlinedProgram
from repro.logic.formula import (
    FALSE,
    TRUE,
    Exists,
    Formula,
    PredAtom,
    conj,
    disj,
    eq,
    neg,
)
from repro.logic.terms import Base
from repro.runtime.trace import phase as trace_phase
from repro.tvp.program import (
    Action,
    Check,
    PredicateDecl,
    TvpProgram,
    Update,
)


class SpecializeError(Exception):
    pass


# -- slots ------------------------------------------------------------------------


@dataclass(frozen=True)
class VarSlot:
    """A component-typed client variable (local, temp, or static)."""

    var: str
    sort: str

    @property
    def key(self) -> str:
        return self.var

    def __str__(self) -> str:
        return self.var


@dataclass(frozen=True)
class FieldSlot:
    """A component-typed instance field of a client class."""

    owner: str
    field: str
    sort: str

    @property
    def key(self) -> str:
        return f".{self.owner}.{self.field}"

    def __str__(self) -> str:
        return self.key


Slot = Union[VarSlot, FieldSlot]


@dataclass(frozen=True)
class SlotInstance:
    """A family instantiated at a tuple of slots."""

    family: str
    slots: Tuple[Slot, ...]

    @property
    def arity(self) -> int:
        return sum(1 for s in self.slots if isinstance(s, FieldSlot))

    @property
    def pred_name(self) -> str:
        inner = ",".join(s.key for s in self.slots)
        return f"{self.family}[{inner}]"

    def atom(self, var_for_position: Dict[int, str]) -> Formula:
        args = tuple(
            var_for_position[i]
            for i, s in enumerate(self.slots)
            if isinstance(s, FieldSlot)
        )
        return PredAtom(self.pred_name, args)


def pt(var: str) -> str:
    return f"pt[{var}]"


def rv(owner: str, field: str) -> str:
    return f"rv[{owner}.{field}]"


def cls(class_name: str) -> str:
    return f"cls[{class_name}]"


# -- the translator ---------------------------------------------------------------------


class _Specializer:
    def __init__(
        self, inlined: InlinedProgram, abstraction: DerivedAbstraction
    ) -> None:
        self.inlined = inlined
        self.abstraction = abstraction
        self.spec = abstraction.spec
        self.program = inlined.program
        self.cfg = inlined.cfg
        self.tvp = TvpProgram(
            f"{self.cfg.method}<hcmp>", self.cfg.entry, self.cfg.exit
        )
        self.var_slots: Dict[str, VarSlot] = {}
        self.field_slots: List[FieldSlot] = []
        self.client_vars: Dict[str, str] = {}  # client-object-typed vars
        self.instances: List[SlotInstance] = []
        self._collect_slots()
        self._declare_predicates()

    # -- slot/predicate discovery -----------------------------------------------------

    def _collect_slots(self) -> None:
        for name, type_ in self.inlined.component_vars().items():
            self.var_slots[name] = VarSlot(name, type_)
        for name, type_ in {
            **self.inlined.variables,
            **self.program.statics,
        }.items():
            if type_ in self.program.classes:
                self.client_vars[name] = type_
        for cinfo in self.program.classes.values():
            for finfo in cinfo.fields.values():
                if finfo.is_static:
                    continue
                if self.spec.is_component_type(finfo.type):
                    self.field_slots.append(
                        FieldSlot(cinfo.name, finfo.name, finfo.type)
                    )
        all_slots: List[Slot] = list(self.var_slots.values()) + list(
            self.field_slots
        )
        for family in self.abstraction.families:
            pools = [
                [s for s in all_slots if s.sort == sort]
                for sort in family.sorts
            ]
            if any(not pool for pool in pools):
                continue
            for combo in itertools.product(*pools):
                instance = SlotInstance(family.name, tuple(combo))
                if instance.arity <= 2:
                    self.instances.append(instance)

    def _declare_predicates(self) -> None:
        for name in self.client_vars:
            self.tvp.declare(PredicateDecl(pt(name), 1, abstraction=True))
        for cinfo in self.program.classes.values():
            self.tvp.declare(
                PredicateDecl(cls(cinfo.name), 1, abstraction=True)
            )
            for finfo in cinfo.fields.values():
                if finfo.is_static or finfo.type not in self.program.classes:
                    continue
                self.tvp.declare(
                    PredicateDecl(rv(cinfo.name, finfo.name), 2)
                )
        for instance in self.instances:
            self.tvp.declare(
                PredicateDecl(
                    instance.pred_name,
                    instance.arity,
                    abstraction=instance.arity == 1,
                )
            )

    # -- helpers --------------------------------------------------------------------------

    def _instance_formula(
        self, instance: SlotInstance, var_for_position: Dict[int, str]
    ) -> Formula:
        return instance.atom(var_for_position)

    def _slot_by_pseudo(self, pseudo: str) -> Slot:
        if pseudo in self.var_slots:
            return self.var_slots[pseudo]
        for slot in self.field_slots:
            if slot.key == pseudo:
                return slot
        raise SpecializeError(f"unknown slot {pseudo!r}")

    def _is_component_var(self, name: str) -> bool:
        return name in self.var_slots

    # -- component operations ----------------------------------------------------------------

    def _comp_op_action(
        self,
        op_key: str,
        binding: Dict[str, str],
        site_id: int,
        line: int,
    ) -> Action:
        op = self.spec.operation(op_key)
        op_abs = self.abstraction.operations[op_key]
        checks = []
        for check_ref in op_abs.checks:
            args = tuple(binding[a.name] for a in check_ref.args)  # type: ignore[union-attr]
            target = SlotInstance(
                check_ref.family,
                tuple(self.var_slots[a] for a in args),
            )
            checks.append(
                Check(site_id, line, op_key, neg(PredAtom(target.pred_name)))
            )
        updates: List[Update] = []
        for instance in self.instances:
            pseudo_args = [s.key for s in instance.slots]
            pattern, slot_vars = instance_pattern(
                op, self.spec, binding, pseudo_args
            )
            case = op_abs.case_for(instance.family, pattern)
            if case is None:
                raise SpecializeError(
                    f"no update case for {instance.pred_name} vs {op_key}"
                )
            if case.identity:
                continue
            var_for_position = {
                i: f"v{i}"
                for i, s in enumerate(instance.slots)
                if isinstance(s, FieldSlot)
            }
            # map each generic slot id / operand to a slot, then to the
            # logical variables of the *target* positions carrying it
            position_of_slot: Dict[str, int] = {}
            for i, s in enumerate(instance.slots):
                position_of_slot.setdefault(s.key, i)
            rhs_atoms = []
            for ref in case.rhs_instances:
                ref_slots: List[Slot] = []
                ref_vars: List[str] = []
                for arg in ref.args:
                    if isinstance(arg, OpArg):
                        slot: Slot = self.var_slots[binding[arg.name]]
                    else:
                        assert isinstance(arg, GenArg)
                        slot = self._slot_by_pseudo(slot_vars[arg.slot])
                    ref_slots.append(slot)
                    if isinstance(slot, FieldSlot):
                        position = position_of_slot[slot.key]
                        ref_vars.append(var_for_position[position])
                rhs_atoms.append(
                    PredAtom(
                        SlotInstance(ref.family, tuple(ref_slots)).pred_name,
                        tuple(ref_vars),
                    )
                )
            rhs: Formula = disj(*rhs_atoms) if rhs_atoms else FALSE
            if case.rhs_true:
                rhs = TRUE
            updates.append(
                Update(
                    instance.pred_name,
                    tuple(
                        var_for_position[i]
                        for i, s in enumerate(instance.slots)
                        if isinstance(s, FieldSlot)
                    ),
                    rhs,
                )
            )
        return Action(updates=tuple(updates), checks=tuple(checks))

    # -- component loads/stores ---------------------------------------------------------------

    def _comp_load_action(self, stm: SLoad) -> Action:
        """``x = y.f`` with ``x`` component-typed."""
        x = stm.dst
        field_slot = self._field_slot_for(stm.base, stm.field)
        updates: List[Update] = []
        for instance in self.instances:
            positions = [
                i
                for i, s in enumerate(instance.slots)
                if isinstance(s, VarSlot) and s.var == x
            ]
            if not positions:
                continue
            source_slots = list(instance.slots)
            for p in positions:
                source_slots[p] = field_slot
            source = SlotInstance(instance.family, tuple(source_slots))
            # bind: target field-slot positions keep their vars; the x
            # positions all read through y's object (one witness o)
            var_for_position = {
                i: f"v{i}"
                for i, s in enumerate(instance.slots)
                if isinstance(s, FieldSlot)
            }
            source_args = []
            for i, s in enumerate(source.slots):
                if not isinstance(s, FieldSlot):
                    continue
                if i in positions:
                    source_args.append("o")
                else:
                    source_args.append(var_for_position[i])
            rhs = Exists(
                "o",
                conj(
                    PredAtom(pt(stm.base), ("o",)),
                    PredAtom(source.pred_name, tuple(source_args)),
                ),
            )
            updates.append(
                Update(
                    instance.pred_name,
                    tuple(
                        var_for_position[i]
                        for i, s in enumerate(instance.slots)
                        if isinstance(s, FieldSlot)
                    ),
                    rhs,
                )
            )
        return Action(
            focus=(PredAtom(pt(stm.base), ("v",)),), updates=tuple(updates)
        )

    def _comp_store_action(self, stm: SStore) -> Action:
        """``y.f = x`` with ``x`` component-typed."""
        field_slot = self._field_slot_for(stm.base, stm.field)
        x_slot = self.var_slots[stm.src]
        updates: List[Update] = []
        for instance in self.instances:
            positions = [
                i
                for i, s in enumerate(instance.slots)
                if s == field_slot
            ]
            if not positions:
                continue
            var_for_position = {
                i: f"v{i}"
                for i, s in enumerate(instance.slots)
                if isinstance(s, FieldSlot)
            }
            branches = []
            for assigned in _subsets(positions):
                guard_parts = []
                for p in positions:
                    atom = PredAtom(pt(stm.base), (var_for_position[p],))
                    guard_parts.append(atom if p in assigned else neg(atom))
                replaced_slots = list(instance.slots)
                for p in assigned:
                    replaced_slots[p] = x_slot
                replaced = SlotInstance(
                    instance.family, tuple(replaced_slots)
                )
                replaced_args = tuple(
                    var_for_position[i]
                    for i, s in enumerate(replaced.slots)
                    if isinstance(s, FieldSlot)
                )
                branches.append(
                    conj(
                        *guard_parts,
                        PredAtom(replaced.pred_name, replaced_args),
                    )
                )
            updates.append(
                Update(
                    instance.pred_name,
                    tuple(
                        var_for_position[i]
                        for i, s in enumerate(instance.slots)
                        if isinstance(s, FieldSlot)
                    ),
                    disj(*branches),
                )
            )
        return Action(
            focus=(PredAtom(pt(stm.base), ("v",)),), updates=tuple(updates)
        )

    def _field_slot_for(self, base_var: str, field: str) -> FieldSlot:
        owner = self.client_vars.get(base_var) or self.inlined.variables.get(
            base_var
        )
        for slot in self.field_slots:
            if slot.owner == owner and slot.field == field:
                return slot
        raise SpecializeError(
            f"no component field slot {owner}.{field}"
        )

    # -- null assignment -----------------------------------------------------------------------

    def _comp_null_action(self, var: str) -> Action:
        updates: List[Update] = []
        for instance in self.instances:
            if not any(
                isinstance(s, VarSlot) and s.var == var
                for s in instance.slots
            ):
                continue
            family = self.abstraction.family(instance.family)
            all_var = all(
                isinstance(s, VarSlot) and s.var == var
                for s in instance.slots
            )
            value = TRUE if all_var and reflexively_true(family) else FALSE
            var_args = tuple(
                f"v{i}"
                for i, s in enumerate(instance.slots)
                if isinstance(s, FieldSlot)
            )
            updates.append(Update(instance.pred_name, var_args, value))
        return Action(updates=tuple(updates))

    # -- client-object statements ----------------------------------------------------------------

    def _client_new_action(self, stm: SNewClient) -> Action:
        updates = [
            Update(pt(stm.dst), ("v",), eq(Base("v"), Base("n"))),
            Update(
                cls(stm.class_name),
                ("v",),
                disj(
                    PredAtom(cls(stm.class_name), ("v",)),
                    eq(Base("v"), Base("n")),
                ),
            ),
        ]
        # reflexively-true instances hold on the fresh object's (null)
        # fields, e.g. same[.f,.f](n,n) — null == null
        for instance in self.instances:
            family = self.abstraction.family(instance.family)
            field_positions = [
                i
                for i, s in enumerate(instance.slots)
                if isinstance(s, FieldSlot)
            ]
            if not field_positions:
                continue
            if len({s for s in instance.slots}) != 1:
                continue
            slot = instance.slots[0]
            if not isinstance(slot, FieldSlot) or slot.owner != stm.class_name:
                continue
            if not reflexively_true(family):
                continue
            var_args = tuple(f"v{i}" for i in field_positions)
            guard = conj(
                *(eq(Base(v), Base("n")) for v in var_args)
            )
            updates.append(
                Update(
                    instance.pred_name,
                    var_args,
                    disj(
                        PredAtom(instance.pred_name, var_args), guard
                    ),
                )
            )
        return Action(new_var="n", updates=tuple(updates))

    # -- the edge walk --------------------------------------------------------------------------

    def translate(self) -> TvpProgram:
        for edge in self.cfg.edges:
            action = self._edge_action(edge.stm)
            self.tvp.add_edge(edge.src, edge.dst, action)
        return self.tvp

    def _edge_action(self, stm) -> Action:
        if isinstance(stm, (SNop, SReturn, SAssume)):
            return Action()
        if isinstance(stm, SCallComp):
            return self._comp_op_action(
                stm.op_key, stm.binding_map, stm.site_id, stm.line
            )
        if isinstance(stm, SCopy):
            if self._is_component_var(stm.dst):
                if stm.dst == stm.src:
                    return Action()
                return self._comp_op_action(
                    f"copy {stm.type}",
                    {"dst": stm.dst, "src": stm.src},
                    site_id=-1,
                    line=stm.line,
                )
            if stm.dst in self.client_vars:
                return Action(
                    updates=(
                        Update(
                            pt(stm.dst), ("v",), PredAtom(pt(stm.src), ("v",))
                        ),
                    )
                )
            return Action()
        if isinstance(stm, SNull):
            if self._is_component_var(stm.dst):
                return self._comp_null_action(stm.dst)
            if stm.dst in self.client_vars:
                return Action(
                    updates=(Update(pt(stm.dst), ("v",), FALSE),)
                )
            return Action()
        if isinstance(stm, SLoad):
            if self.spec.is_component_type(stm.type):
                return self._comp_load_action(stm)
            if stm.type in self.program.classes:
                rhs = Exists(
                    "o",
                    conj(
                        PredAtom(pt(stm.base), ("o",)),
                        PredAtom(
                            rv(self._owner_of(stm.base), stm.field),
                            ("o", "v"),
                        ),
                    ),
                )
                return Action(
                    focus=(PredAtom(pt(stm.base), ("v",)),),
                    updates=(Update(pt(stm.dst), ("v",), rhs),),
                )
            return Action()
        if isinstance(stm, SStore):
            if self.spec.is_component_type(stm.type):
                return self._comp_store_action(stm)
            if stm.type in self.program.classes:
                owner = self._owner_of(stm.base)
                rv_name = rv(owner, stm.field)
                rhs = disj(
                    conj(
                        PredAtom(pt(stm.base), ("v1",)),
                        PredAtom(pt(stm.src), ("v2",)),
                    ),
                    conj(
                        neg(PredAtom(pt(stm.base), ("v1",))),
                        PredAtom(rv_name, ("v1", "v2")),
                    ),
                )
                return Action(
                    focus=(PredAtom(pt(stm.base), ("v",)),),
                    updates=(Update(rv_name, ("v1", "v2"), rhs),),
                )
            return Action()
        if isinstance(stm, SNewClient):
            return self._client_new_action(stm)
        raise SpecializeError(f"unsupported statement {stm!r}")

    def _owner_of(self, base_var: str) -> str:
        owner = self.client_vars.get(base_var)
        if owner is None:
            raise SpecializeError(f"unknown client object var {base_var}")
        return owner


def _subsets(items: Sequence[int]):
    for mask in range(1 << len(items)):
        yield frozenset(
            items[i] for i in range(len(items)) if mask >> i & 1
        )


def specialized_translation(
    inlined: InlinedProgram, abstraction: DerivedAbstraction
) -> TvpProgram:
    """Translate an inlined heap client into a specialized TVP program.

    Also returns the nullary "initially true" facts via the program's
    predicate declarations (reflexive variable instances hold on the
    all-null entry state; the engine consults ``initially_true_preds``).
    """
    with trace_phase("transform", target="tvp") as trace_meta:
        specializer = _Specializer(inlined, abstraction)
        tvp = specializer.translate()
        initially_true = []
        for instance in specializer.instances:
            family = specializer.abstraction.family(instance.family)
            if (
                instance.arity == 0
                and len({s for s in instance.slots}) <= 1
                and reflexively_true(family)
            ):
                initially_true.append(instance.pred_name)
        tvp.initially_true_nullary = initially_true  # type: ignore[attr-defined]
        trace_meta.update(
            predicates=len(specializer.instances), edges=len(tvp.edges)
        )
    return tvp
